// Procedural image-classification datasets.
//
// The paper evaluates on CIFAR-10 and GTSRB; neither ships with this
// repository, so we substitute procedurally generated classification tasks
// with the same interface characteristics (documented in DESIGN.md):
//
//  * SynthCifar  - 10 classes. Each class has a distinctive colour,
//    stripe orientation and frequency; per-image jitter (phase, brightness)
//    plus Gaussian pixel noise makes the task non-trivial but learnable by
//    a small CNN in a few epochs.
//  * SynthGtsrb  - 43 classes built from (shape x border colour x glyph)
//    combinations, mimicking the structure of traffic-sign classes.
//
// What matters for the defenses under study is that (1) a CNN learns the
// main task, (2) a trigger can be embedded as a backdoor shortcut, and
// (3) the defender has only a few samples per class - all preserved here.
#pragma once

#include "data/dataset.h"
#include "util/rng.h"

namespace bd::data {

struct SynthConfig {
  std::int64_t height = 16;
  std::int64_t width = 16;
  std::int64_t train_per_class = 300;
  std::int64_t test_per_class = 60;
  float noise_stddev = 0.08f;
};

struct TrainTest {
  ImageDataset train;
  ImageDataset test;
};

/// 10-class CIFAR-10 stand-in.
TrainTest make_synth_cifar(const SynthConfig& config, Rng& rng);

/// 43-class GTSRB stand-in.
TrainTest make_synth_gtsrb(const SynthConfig& config, Rng& rng);

/// Renders a single image of the given class (used by tests to probe
/// class-conditional structure).
Tensor render_synth_cifar_image(std::int64_t label, const SynthConfig& config,
                                Rng& rng);
Tensor render_synth_gtsrb_image(std::int64_t label, const SynthConfig& config,
                                Rng& rng);

constexpr std::int64_t kSynthCifarClasses = 10;
constexpr std::int64_t kSynthGtsrbClasses = 43;

}  // namespace bd::data
