#include "robust/supervisor.h"

#include "runtime/ordered_mutex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <thread>

#include "obs/obs.h"
#include "robust/fault_injector.h"
#include "util/env.h"
#include "util/logging.h"

namespace bd::robust {

namespace {

thread_local CancelToken t_current_token;

/// Formats a seconds value the way it was configured (shortest form), so
/// watchdog reasons depend only on the config — never on measured time —
/// and degraded cells replay byte-identically on resume.
std::string format_seconds(double seconds) {
  std::ostringstream out;
  out << seconds;
  return out.str();
}

/// Background thread that cancels `source` when the attempt overruns its
/// deadline or its heartbeat goes stale. Join-on-destruction RAII; spawned
/// only when at least one budget is configured.
class Watchdog {
 public:
  Watchdog(CancelSource& source, double deadline_seconds, double stall_seconds,
           CancelToken external)
      : source_(source),
        deadline_seconds_(deadline_seconds),
        stall_seconds_(stall_seconds),
        external_(std::move(external)),
        start_(std::chrono::steady_clock::now()) {
    thread_ = std::thread([this] { watch(); });
  }

  ~Watchdog() {
    {
      std::lock_guard lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  void watch() {
    // Poll at ~1/8 of the tightest budget so detection lands well within
    // one budget interval, clamped to [1ms, 250ms]. With only an external
    // token to watch there is no budget to subdivide; 50ms keeps client
    // cancellation snappy without spinning.
    double tightest = 0.0;
    if (deadline_seconds_ > 0.0) tightest = deadline_seconds_;
    if (stall_seconds_ > 0.0 &&
        (tightest == 0.0 || stall_seconds_ < tightest)) {
      tightest = stall_seconds_;
    }
    const auto interval =
        tightest > 0.0
            ? std::chrono::milliseconds(std::clamp(
                  static_cast<long long>(tightest * 1000.0 / 8.0), 1LL,
                  250LL))
            : std::chrono::milliseconds(50);

    std::unique_lock lock(mutex_);
    while (!done_) {
      cv_.wait_for(lock, interval);
      if (done_) return;
      if (external_.valid() && external_.cancelled()) {
        source_.cancel(external_.reason().empty() ? "cancelled by caller"
                                                  : external_.reason());
        return;
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      if (deadline_seconds_ > 0.0 && elapsed > deadline_seconds_) {
        source_.cancel("watchdog: deadline of " +
                       format_seconds(deadline_seconds_) + "s exceeded");
        return;
      }
      if (stall_seconds_ > 0.0 &&
          source_.heartbeat_age_seconds() > stall_seconds_) {
        source_.cancel("watchdog: heartbeat stalled beyond " +
                       format_seconds(stall_seconds_) + "s");
        return;
      }
    }
  }

  CancelSource& source_;
  const double deadline_seconds_;
  const double stall_seconds_;
  const CancelToken external_;
  const std::chrono::steady_clock::time_point start_;
  std::thread thread_;
  runtime::OrderedMutex<runtime::LockRank::kSupervisorWatchdog> mutex_;
  std::condition_variable_any cv_;
  bool done_ = false;
};

SupervisorConfig config_from_env() {
  SupervisorConfig config;
  if (const auto d = env_double("BDPROTO_DEADLINE")) {
    config.deadline_seconds = std::max(0.0, *d);
  }
  if (const auto s = env_double("BDPROTO_STALL")) {
    config.stall_seconds = std::max(0.0, *s);
  }
  if (const auto r = env_int("BDPROTO_RETRIES")) {
    config.max_retries = std::max<int>(0, static_cast<int>(*r));
  }
  return config;
}

}  // namespace

namespace detail {

std::uint64_t cancel_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace detail

CancelScope::CancelScope(CancelToken token) : previous_(t_current_token) {
  t_current_token = std::move(token);
}

CancelScope::~CancelScope() { t_current_token = previous_; }

CancelToken current_cancel_token() { return t_current_token; }

void poll_cancellation(const char* where) {
  const CancelToken& token = t_current_token;
  token.heartbeat();
  auto& faults = FaultInjector::instance();
  if (faults.fire(FaultKind::kHang)) {
    // Simulated hang: sit here heartbeat-silent until the watchdog cancels
    // us (or a safety cap expires so an unsupervised test cannot wedge).
    BD_LOG(Warn) << "fault injector: simulated hang at " << where;
    const auto start = std::chrono::steady_clock::now();
    while (!token.cancelled() &&
           std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
                   .count() < 30.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (token.cancelled()) throw Cancelled(token.reason(), where);
}

Supervisor& Supervisor::instance() {
  static Supervisor supervisor(config_from_env());
  return supervisor;
}

SupervisorConfig Supervisor::config() const {
  std::lock_guard lock(mutex_);
  return config_;
}

void Supervisor::configure(const SupervisorConfig& config) {
  std::lock_guard lock(mutex_);
  config_ = config;
  stats_ = SupervisorStats{};
  strikes_.clear();
  last_failure_.clear();
}

void Supervisor::reset() {
  std::lock_guard lock(mutex_);
  stats_ = SupervisorStats{};
  strikes_.clear();
  last_failure_.clear();
}

bool Supervisor::quarantined(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = strikes_.find(key);
  return it != strikes_.end() && it->second >= config_.quarantine_strikes;
}

int Supervisor::strikes(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = strikes_.find(key);
  return it == strikes_.end() ? 0 : it->second;
}

SupervisorStats Supervisor::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

RunReport Supervisor::run(const std::string& key,
                          const std::function<void()>& fn,
                          CancelToken external_cancel) {
  SupervisorConfig config;
  {
    std::lock_guard lock(mutex_);
    config = config_;
    const auto it = strikes_.find(key);
    if (it != strikes_.end() && it->second >= config_.quarantine_strikes) {
      ++stats_.refused;
      RunReport report;
      report.status = RunStatus::kQuarantined;
      report.failure = "quarantined after " + std::to_string(it->second) +
                       " strikes (last: " + last_failure_[key] + ")";
      return report;
    }
    ++stats_.runs;
  }
  BD_OBS_COUNT("supervisor.runs", 1);

  const double stall = config.stall_seconds > 0.0 ? config.stall_seconds
                                                  : config.deadline_seconds;
  RunReport report;
  for (int attempt = 1; attempt <= 1 + config.max_retries; ++attempt) {
    if (external_cancel.valid() && external_cancel.cancelled()) {
      report.externally_cancelled = true;
      report.failure = external_cancel.reason().empty()
                           ? "cancelled by caller"
                           : external_cancel.reason();
      break;
    }
    if (attempt > 1) {
      const double backoff =
          config.backoff_initial_seconds *
          std::pow(config.backoff_factor, static_cast<double>(attempt - 2));
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      {
        std::lock_guard lock(mutex_);
        ++stats_.retries;
      }
      BD_OBS_COUNT("supervisor.retries", 1);
      BD_LOG(Warn) << "supervisor: retrying '" << key << "' (attempt "
                   << attempt << "/" << 1 + config.max_retries
                   << "): " << report.failure;
    }
    report.attempts = attempt;
    try {
      CancelSource source;
      CancelScope scope(source.token());
      std::optional<Watchdog> watchdog;
      if (config.deadline_seconds > 0.0 || stall > 0.0 ||
          external_cancel.valid()) {
        watchdog.emplace(source, config.deadline_seconds, stall,
                         external_cancel);
      }
      fn();
      report.status = RunStatus::kOk;
      report.failure.clear();
      std::lock_guard lock(mutex_);
      strikes_.erase(key);
      last_failure_.erase(key);
      return report;
    } catch (const SimulatedCrash&) {
      throw;  // models a process kill: no in-process retry
    } catch (const Cancelled& e) {
      report.failure = e.what();
      if (external_cancel.valid() && external_cancel.cancelled()) {
        // Client-requested stop: not the configuration's fault, so no
        // strike, no retry — report it and let the caller record the
        // cancellation.
        report.externally_cancelled = true;
        break;
      }
      report.timed_out = true;
      std::lock_guard lock(mutex_);
      ++stats_.timeouts;
      BD_OBS_COUNT("supervisor.timeouts", 1);
    } catch (const std::exception& e) {
      report.failure = e.what();
    }

    std::lock_guard lock(mutex_);
    const int strikes = ++strikes_[key];
    last_failure_[key] = report.failure;
    if (strikes >= config.quarantine_strikes) {
      ++stats_.quarantines;
      BD_OBS_COUNT("supervisor.quarantines", 1);
      BD_LOG(Warn) << "supervisor: quarantining '" << key << "' after "
                   << strikes << " strikes: " << report.failure;
      report.status = RunStatus::kQuarantined;
      return report;
    }
  }

  report.status = RunStatus::kFailed;
  {
    std::lock_guard lock(mutex_);
    if (report.externally_cancelled) {
      ++stats_.cancelled;
    } else {
      ++stats_.failures;
    }
  }
  BD_OBS_COUNT(report.externally_cancelled ? "supervisor.cancelled"
                                           : "supervisor.failures",
               1);
  return report;
}

}  // namespace bd::robust
