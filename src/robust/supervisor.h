// Supervised trial execution: watchdog deadlines, retry with exponential
// backoff, and quarantine of repeatedly-failing configurations.
//
// Every unit of work (an attack preparation, one defense trial, a journal
// append) runs through Supervisor::run(key, fn):
//
//   * A watchdog thread cancels the attempt's CancelSource when the
//     attempt exceeds its wall-clock deadline or its heartbeat (stamped by
//     poll_cancellation() at batch/round boundaries) goes stale. The work
//     observes the cancellation cooperatively at the next boundary, so no
//     model mutation is ever torn mid-update.
//   * A failed or timed-out attempt is retried with exponential backoff.
//     The supervisor never touches any RNG: callers re-derive all
//     randomness inside `fn` from seeds drawn BEFORE the first attempt, so
//     a retried trial is bit-identical to an undisturbed one and journal
//     keys never shift.
//   * Each failure adds a strike against `key`; at `quarantine_strikes`
//     the key is quarantined and further runs are refused immediately
//     (RunStatus::kQuarantined), letting the rest of a table bench
//     complete while a poisoned configuration is reported as degraded.
//
// Knobs (read once by Supervisor::instance()):
//   BDPROTO_DEADLINE  per-attempt wall-clock budget in seconds (0 = off)
//   BDPROTO_STALL     heartbeat staleness budget in seconds
//                     (default: the deadline)
//   BDPROTO_RETRIES   retries after the first failed attempt (default 2)
//
// SimulatedCrash (the `crash@n` fault) is deliberately NOT retried: it
// models a process kill, so it propagates to the caller like one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "robust/cancel.h"
#include "runtime/ordered_mutex.h"

namespace bd::robust {

struct SupervisorConfig {
  /// Per-attempt wall-clock budget in seconds; 0 disables the watchdog's
  /// total-budget check.
  double deadline_seconds = 0.0;
  /// Cancel when no heartbeat arrived for this many seconds; 0 defers to
  /// `deadline_seconds` (so a bare deadline also catches hangs).
  double stall_seconds = 0.0;
  /// Retries after the first failed attempt.
  int max_retries = 2;
  /// Backoff before retry k (1-based): initial * factor^(k-1) seconds.
  double backoff_initial_seconds = 0.05;
  double backoff_factor = 2.0;
  /// Accumulated failures of one key before it is quarantined.
  int quarantine_strikes = 3;
};

enum class RunStatus {
  kOk = 0,
  kFailed,       // retry budget exhausted
  kQuarantined,  // struck out (now or previously) — work refused or stopped
};

struct RunReport {
  RunStatus status = RunStatus::kOk;
  /// Attempts actually executed (0 when refused while quarantined).
  int attempts = 0;
  /// True when any attempt was cancelled by the watchdog.
  bool timed_out = false;
  /// True when the run stopped because the caller-supplied external token
  /// was cancelled (e.g. a serve client cancelled its job). Externally
  /// cancelled runs are never retried and never add a strike.
  bool externally_cancelled = false;
  /// Last failure reason ("" on success).
  std::string failure;

  bool ok() const { return status == RunStatus::kOk; }
  std::int64_t retries() const { return attempts > 0 ? attempts - 1 : 0; }
};

struct SupervisorStats {
  std::int64_t runs = 0;         // run() calls that executed at least once
  std::int64_t retries = 0;      // attempts beyond each run's first
  std::int64_t timeouts = 0;     // attempts cancelled by the watchdog
  std::int64_t failures = 0;     // runs ending kFailed
  std::int64_t quarantines = 0;  // keys moved into quarantine
  std::int64_t refused = 0;      // runs refused because the key was quarantined
  std::int64_t cancelled = 0;    // runs stopped by an external cancel token
};

class Supervisor {
 public:
  /// Process-wide instance, configured from the environment knobs above.
  static Supervisor& instance();

  Supervisor() = default;
  explicit Supervisor(const SupervisorConfig& config) : config_(config) {}

  /// Runs `fn` under the watchdog/retry/quarantine policy. `fn` must be
  /// re-runnable: every attempt re-derives its state from pre-drawn seeds.
  /// When `external_cancel` is a valid token, the watchdog also forwards
  /// its cancellation into the attempt (observed cooperatively at the next
  /// poll_cancellation() boundary); an externally cancelled run stops
  /// without retrying and without striking `key`.
  RunReport run(const std::string& key, const std::function<void()>& fn,
                CancelToken external_cancel = CancelToken());

  SupervisorConfig config() const;
  /// Replaces the config and clears strikes + stats (test hook).
  void configure(const SupervisorConfig& config);
  /// Clears strikes + stats, keeping the config.
  void reset();

  bool quarantined(const std::string& key) const;
  int strikes(const std::string& key) const;
  SupervisorStats stats() const;

 private:
  mutable runtime::OrderedMutex<runtime::LockRank::kSupervisor> mutex_;
  SupervisorConfig config_;
  SupervisorStats stats_;
  std::map<std::string, int> strikes_;
  std::map<std::string, std::string> last_failure_;
};

}  // namespace bd::robust
