#include "robust/train_guard.h"

#include <cmath>
#include <sstream>

namespace bd::robust {

std::string GuardReport::summary() const {
  if (events.empty() && !gave_up) return "";
  std::ostringstream out;
  out << recoveries << (recoveries == 1 ? " recovery" : " recoveries");
  if (!events.empty()) {
    out << " (";
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i) out << ", ";
      out << events[i].reason << "@e" << events[i].epoch << "s"
          << events[i].step;
    }
    out << ")";
  }
  if (gave_up) out << ", retry budget exhausted";
  return out.str();
}

const char* TrainGuard::check_loss(double loss) {
  if (!config_.enabled) return nullptr;
  if (!std::isfinite(loss)) return "non-finite loss";
  if (best_loss_ >= 0.0 &&
      loss > config_.explode_factor * (1.0 + best_loss_)) {
    return "loss explosion";
  }
  if (best_loss_ < 0.0 || loss < best_loss_) best_loss_ = loss;
  return nullptr;
}

const char* TrainGuard::check_grad_norm(double norm) const {
  if (!config_.enabled) return nullptr;
  if (!std::isfinite(norm)) return "non-finite gradient";
  return nullptr;
}

void TrainGuard::record_recovery(std::int64_t epoch, std::int64_t step,
                                 double bad_value, double lr_after,
                                 const std::string& reason) {
  ++report_.recoveries;
  report_.events.push_back({epoch, step, bad_value, lr_after, reason});
}

}  // namespace bd::robust
