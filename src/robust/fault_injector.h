// Deterministic fault injection for exercising recovery paths.
//
// Faults are armed from a spec string (env BDPROTO_FAULTS or programmatic
// configure()) of comma-separated `kind@n` terms, where `n` is the 1-based
// occurrence at which the fault fires:
//
//   io_fail@3     third checkpoint/journal I/O operation throws
//                 std::runtime_error
//   nan@120       training batch loss #120 is replaced with NaN
//   nan_grad@2    gradient-scoring pass #2 (Grad-Prune) produces NaN scores
//   crash@5       a SimulatedCrash is thrown after the 5th completed bench
//                 cell (simulates a kill between cells; the run journal is
//                 already durable at that point)
//   hang@4        cancellation poll #4 stalls heartbeat-silent until the
//                 supervisor's watchdog cancels it (exercises stall
//                 detection + cooperative cancellation)
//   slow_io@2     second journal append sleeps ~25ms before proceeding
//                 (latency without failure; must not change any output)
//   torn_write@1  first v2 checkpoint write stops halfway through the tmp
//                 file and throws SimulatedCrash, leaving the torn tmp on
//                 disk (proves the atomic-rename commit protocol)
//   oom_sim@3     third defense trial throws SimulatedOom (a bad_alloc the
//                 supervisor treats as retryable)
//   crash_worker@2  second claimed shard cell SIGKILLs the worker process
//                 mid-cell — a real kill, not an exception: the claim is
//                 already durable in the lease ledger, so a surviving
//                 worker must steal the expired lease (src/shard/)
//   conn_reset@1  client side: after sending its 1st request the client
//                 sets SO_LINGER{1,0} and closes, so the daemon sees a
//                 real RST mid-exchange and the client's retry layer must
//                 re-submit idempotently (src/serve/client.cpp)
//   slow_peer@2   client side: the 2nd request is sent one byte at a time
//                 with small sleeps — a slowloris peer exercising the
//                 server's framing and read deadlines (src/serve/client.cpp)
//   short_write@3 the 3rd send_all() call is degraded to one-byte send(2)
//                 syscalls, proving the partial-write loop reassembles the
//                 frame (src/serve/net.cpp)
//   accept_fail@1 the daemon's 1st accepted connection is dropped at
//                 accept as if accept(2) failed transiently; the accept
//                 loop must log and keep serving (src/serve/server.cpp)
//
// Each site calls the matching fire_*() helper; the injector counts calls
// per kind and fires at the armed indices. All counters are process-global
// and mutex-guarded; tests reset them via configure()/reset().
#pragma once

#include <cstdint>
#include <mutex>
#include <new>
#include <set>
#include <stdexcept>
#include <string>

namespace bd::robust {

/// Thrown by an armed `crash@n` fault. Mirrors a mid-run kill without
/// tearing down the process, so tests can catch it and re-enter with
/// resume enabled. Real kills are equivalent because every durable write
/// is flushed before the crash check runs.
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by an armed `oom_sim@n` fault. Derives from std::bad_alloc so
/// recovery code exercises the same catch paths a real allocation failure
/// would, but is distinguishable in test assertions.
class SimulatedOom : public std::bad_alloc {
 public:
  const char* what() const noexcept override {
    return "simulated out-of-memory (BDPROTO_FAULTS oom_sim@n)";
  }
};

enum class FaultKind {
  kIoFail = 0,
  kNanLoss,
  kNanGrad,
  kCrash,
  kHang,
  kSlowIo,
  kTornWrite,
  kOom,
  kCrashWorker,
  kConnReset,
  kSlowPeer,
  kShortWrite,
  kAcceptFail,
};

class FaultInjector {
 public:
  /// Process-wide instance; first use arms faults from BDPROTO_FAULTS.
  static FaultInjector& instance();

  /// Re-arms from a spec string ("io_fail@3,nan@120"), resetting all
  /// counters. Throws std::invalid_argument on malformed specs.
  void configure(const std::string& spec);

  /// Disarms everything and resets counters.
  void reset();

  /// True if any occurrence of `kind` is still pending.
  bool armed(FaultKind kind) const;

  /// Counts one occurrence of `kind`; true when that occurrence is armed.
  bool fire(FaultKind kind);

  /// fire(kIoFail), throwing std::runtime_error mentioning `what` if armed.
  void fire_io(const std::string& what);

  /// fire(kNanLoss): true when the current batch loss must become NaN.
  bool fire_nan_loss() { return fire(FaultKind::kNanLoss); }

  /// fire(kNanGrad): true when the current scoring pass must go non-finite.
  bool fire_nan_grad() { return fire(FaultKind::kNanGrad); }

  /// fire(kCrash), throwing SimulatedCrash mentioning `where` if armed.
  void fire_crash(const std::string& where);

  /// fire(kSlowIo): sleeps ~25ms mentioning `what` if armed. Latency only —
  /// never fails, never changes output.
  void fire_slow_io(const std::string& what);

  /// fire(kOom), throwing SimulatedOom if armed (`what` is logged).
  void fire_oom(const std::string& what);

  /// fire(kCrashWorker): if armed, SIGKILLs the current process (no
  /// destructors, no flushes) — the honest model of a worker dying
  /// mid-cell. Never returns when it fires.
  void fire_crash_worker(const std::string& where);

  /// fire(kConnReset): true when the client must RST this connection
  /// after sending the request (SO_LINGER{1,0} + close).
  bool fire_conn_reset() { return fire(FaultKind::kConnReset); }

  /// fire(kSlowPeer): true when the client must trickle this request one
  /// byte at a time (slowloris against the server's read deadline).
  bool fire_slow_peer() { return fire(FaultKind::kSlowPeer); }

  /// fire(kShortWrite): true when this send_all() must degrade to
  /// one-byte send(2) calls (the partial-write loop does the work).
  bool fire_short_write() { return fire(FaultKind::kShortWrite); }

  /// fire(kAcceptFail): true when the server must drop this accepted
  /// connection as a transient accept failure.
  bool fire_accept_fail() { return fire(FaultKind::kAcceptFail); }

 private:
  FaultInjector();

  static constexpr int kKinds = 13;

  mutable std::mutex mutex_;
  std::set<std::int64_t> triggers_[kKinds];  // armed occurrences per kind
  std::int64_t counts_[kKinds] = {};
};

}  // namespace bd::robust
