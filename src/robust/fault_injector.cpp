#include "robust/fault_injector.h"

#include <csignal>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/env.h"
#include "util/logging.h"

namespace bd::robust {

namespace {

int kind_index(FaultKind kind) { return static_cast<int>(kind); }

FaultKind parse_kind(const std::string& name) {
  if (name == "io_fail") return FaultKind::kIoFail;
  if (name == "nan") return FaultKind::kNanLoss;
  if (name == "nan_grad") return FaultKind::kNanGrad;
  if (name == "crash") return FaultKind::kCrash;
  if (name == "hang") return FaultKind::kHang;
  if (name == "slow_io") return FaultKind::kSlowIo;
  if (name == "torn_write") return FaultKind::kTornWrite;
  if (name == "oom_sim") return FaultKind::kOom;
  if (name == "crash_worker") return FaultKind::kCrashWorker;
  if (name == "conn_reset") return FaultKind::kConnReset;
  if (name == "slow_peer") return FaultKind::kSlowPeer;
  if (name == "short_write") return FaultKind::kShortWrite;
  if (name == "accept_fail") return FaultKind::kAcceptFail;
  throw std::invalid_argument("BDPROTO_FAULTS: unknown fault kind '" + name +
                              "'");
}

}  // namespace

FaultInjector::FaultInjector() {
  if (const auto spec = env_string("BDPROTO_FAULTS")) {
    configure(*spec);
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const std::string& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& t : triggers_) t.clear();
  for (auto& c : counts_) c = 0;

  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string term = spec.substr(pos, end - pos);
    pos = end + 1;
    if (term.empty()) continue;

    const std::size_t at = term.find('@');
    if (at == std::string::npos) {
      throw std::invalid_argument("BDPROTO_FAULTS: term '" + term +
                                  "' is not of the form kind@n");
    }
    const FaultKind kind = parse_kind(term.substr(0, at));
    char* parse_end = nullptr;
    const long long n = std::strtoll(term.c_str() + at + 1, &parse_end, 10);
    if (parse_end == term.c_str() + at + 1 || *parse_end != '\0' || n < 1) {
      throw std::invalid_argument("BDPROTO_FAULTS: bad occurrence in '" +
                                  term + "' (need a positive integer)");
    }
    triggers_[kind_index(kind)].insert(static_cast<std::int64_t>(n));
  }
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& t : triggers_) t.clear();
  for (auto& c : counts_) c = 0;
}

bool FaultInjector::armed(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const int k = kind_index(kind);
  return triggers_[k].upper_bound(counts_[k]) != triggers_[k].end();
}

bool FaultInjector::fire(FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int k = kind_index(kind);
  if (triggers_[k].empty()) return false;  // fast path: nothing armed
  const std::int64_t occurrence = ++counts_[k];
  return triggers_[k].count(occurrence) > 0;
}

void FaultInjector::fire_io(const std::string& what) {
  if (fire(FaultKind::kIoFail)) {
    BD_LOG(Warn) << "fault injector: failing I/O at " << what;
    throw std::runtime_error(what + ": injected I/O failure (BDPROTO_FAULTS)");
  }
}

void FaultInjector::fire_crash(const std::string& where) {
  if (fire(FaultKind::kCrash)) {
    BD_LOG(Warn) << "fault injector: simulated crash at " << where;
    throw SimulatedCrash("simulated crash at " + where +
                         " (BDPROTO_FAULTS crash@n)");
  }
}

void FaultInjector::fire_slow_io(const std::string& what) {
  if (fire(FaultKind::kSlowIo)) {
    BD_LOG(Warn) << "fault injector: slowing I/O at " << what;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

void FaultInjector::fire_oom(const std::string& what) {
  if (fire(FaultKind::kOom)) {
    BD_LOG(Warn) << "fault injector: simulated out-of-memory at " << what;
    throw SimulatedOom();
  }
}

void FaultInjector::fire_crash_worker(const std::string& where) {
  if (fire(FaultKind::kCrashWorker)) {
    BD_LOG(Warn) << "fault injector: SIGKILLing worker at " << where;
    ::raise(SIGKILL);  // no unwinding: the lease must expire, not release
  }
}

}  // namespace bd::robust
