// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to detect
// checkpoint and journal corruption. Incremental: feed chunks by passing
// the previous return value as `seed`.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bd::robust {

/// CRC-32 of `len` bytes at `data`. Chain calls via `seed` (default 0
/// starts a fresh checksum; the final value is already post-inverted).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace bd::robust
