// Append-only JSONL run journal for crash-resumable experiment sweeps.
//
// Each completed experiment cell is one line:
//
//   {"key":"<config hash>","fields":{"acc":"...","asr":"...", ...}}
//
// appended and flushed as soon as the cell finishes, so a kill between
// cells loses at most the in-flight cell. On reopen the journal tolerates
// a torn final line (a write interrupted by the kill): the damaged tail is
// dropped and the next append starts on a fresh line. Field values are
// opaque strings; callers serialize doubles with "%.17g" so that resumed
// tables are byte-identical to uninterrupted runs.
//
// Multi-writer safety: every entry is appended with O_APPEND and exactly
// one write(2) call (append_line_atomic below), so concurrent appender
// processes — the sharded bench workers of src/shard/ — can never
// interleave bytes mid-line. BDPROTO_JOURNAL_FSYNC=1 additionally fsyncs
// each append for crash-durability tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace bd::robust {

using JournalFields = std::map<std::string, std::string>;

class RunJournal {
 public:
  /// Disabled journal: has() is always false, record() is a no-op.
  RunJournal() = default;

  /// Opens (creating if absent) the journal at `path` and loads every
  /// intact entry. A torn final line is dropped with a warning; a
  /// malformed line elsewhere throws with its line number.
  explicit RunJournal(std::string path);

  bool enabled() const { return !path_.empty(); }
  std::size_t size() const { return entries_.size(); }
  bool has(const std::string& key) const { return entries_.count(key) > 0; }

  /// Entry for `key`, or nullptr when absent.
  const JournalFields* find(const std::string& key) const;

  /// All loaded entries keyed by config hash (inspection, `bdctl verify`).
  const std::map<std::string, JournalFields>& entries() const {
    return entries_;
  }

  /// Appends {key, fields} and flushes to disk before returning. Repeated
  /// keys keep the latest fields in memory. No-op when disabled.
  void record(const std::string& key, const JournalFields& fields);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::map<std::string, JournalFields> entries_;
};

/// Serializes one {key, fields} entry as a single line (trailing newline
/// included) of the journal's canonical JSONL grammar. Shared with the
/// shard lease ledger so both files parse with the same code.
std::string encode_journal_line(const std::string& key,
                                const JournalFields& fields);

/// Parses one line of the canonical grammar into (key, fields). Returns
/// false on any deviation — including a torn line — instead of throwing,
/// so the caller decides whether the damage is tolerable.
bool parse_journal_line(const std::string& line, std::string& key,
                        JournalFields& fields);

/// Appends `line` to `path` with O_APPEND and exactly one write(2) call:
/// concurrent appenders (other worker processes) can never interleave
/// bytes mid-line, so every intact line in the file parses. Honours
/// BDPROTO_JOURNAL_FSYNC=1 by fsyncing before returning. Throws on open
/// failure or a short write (ENOSPC-class; the torn tail is dropped on
/// the next load).
void append_line_atomic(const std::string& path, const std::string& line);

/// True when BDPROTO_JOURNAL_FSYNC=1: every journal/ledger append is
/// fsynced before the writer proceeds (crash-durability testing knob).
bool journal_fsync_enabled();

/// FNV-1a 64-bit hash of `s`, as 16 lowercase hex digits. Stable across
/// runs and platforms (unlike std::hash), so journal keys written by one
/// process match the keys computed by the resuming one.
std::string stable_hash_hex(const std::string& s);

/// Doubles serialized for the journal: shortest form that round-trips
/// bit-exactly through strtod ("%.17g").
std::string exact_double(double v);

}  // namespace bd::robust
