// Append-only JSONL run journal for crash-resumable experiment sweeps.
//
// Each completed experiment cell is one line:
//
//   {"key":"<config hash>","fields":{"acc":"...","asr":"...", ...}}
//
// appended and flushed as soon as the cell finishes, so a kill between
// cells loses at most the in-flight cell. On reopen the journal tolerates
// a torn final line (a write interrupted by the kill): the damaged tail is
// dropped and the next append starts on a fresh line. Field values are
// opaque strings; callers serialize doubles with "%.17g" so that resumed
// tables are byte-identical to uninterrupted runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace bd::robust {

using JournalFields = std::map<std::string, std::string>;

class RunJournal {
 public:
  /// Disabled journal: has() is always false, record() is a no-op.
  RunJournal() = default;

  /// Opens (creating if absent) the journal at `path` and loads every
  /// intact entry. A torn final line is dropped with a warning; a
  /// malformed line elsewhere throws with its line number.
  explicit RunJournal(std::string path);

  bool enabled() const { return !path_.empty(); }
  std::size_t size() const { return entries_.size(); }
  bool has(const std::string& key) const { return entries_.count(key) > 0; }

  /// Entry for `key`, or nullptr when absent.
  const JournalFields* find(const std::string& key) const;

  /// All loaded entries keyed by config hash (inspection, `bdctl verify`).
  const std::map<std::string, JournalFields>& entries() const {
    return entries_;
  }

  /// Appends {key, fields} and flushes to disk before returning. Repeated
  /// keys keep the latest fields in memory. No-op when disabled.
  void record(const std::string& key, const JournalFields& fields);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::map<std::string, JournalFields> entries_;
};

/// FNV-1a 64-bit hash of `s`, as 16 lowercase hex digits. Stable across
/// runs and platforms (unlike std::hash), so journal keys written by one
/// process match the keys computed by the resuming one.
std::string stable_hash_hex(const std::string& s);

/// Doubles serialized for the journal: shortest form that round-trips
/// bit-exactly through strtod ("%.17g").
std::string exact_double(double v);

}  // namespace bd::robust
