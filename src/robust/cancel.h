// Cooperative cancellation for supervised trial execution.
//
// A CancelSource owns the shared cancellation state; CancelTokens are cheap
// handles onto it. Work never gets killed mid-mutation: long-running loops
// call poll_cancellation() at their batch/round boundaries (the same places
// that open the obs epoch/round spans), which stamps a heartbeat for the
// watchdog and throws Cancelled once the source has been cancelled — so a
// cancelled loop always unwinds from a consistent point with an integer
// number of optimizer steps applied.
//
// The current token is installed thread-locally by a CancelScope (the
// Supervisor does this around every attempt), which keeps the token out of
// every loop signature: trainer epochs, defense rounds and Grad-Prune
// iterations all share one poll_cancellation() call site per boundary.
// Code running outside any scope polls against a null token, which never
// cancels and costs a thread-local read plus one relaxed atomic store.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

namespace bd::robust {

/// Thrown by poll_cancellation() at the first boundary after the owning
/// CancelSource was cancelled. `reason()` is the source's cancellation
/// reason (e.g. the watchdog's deadline message); what() adds the boundary
/// at which the work actually stopped.
class Cancelled : public std::runtime_error {
 public:
  Cancelled(std::string reason, const std::string& where)
      : std::runtime_error(reason + " (observed at " + where + ")"),
        reason_(std::move(reason)) {}

  const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

namespace detail {

/// Nanoseconds on the steady clock (shared epoch with heartbeats).
std::uint64_t cancel_now_ns();

struct CancelState {
  std::atomic<bool> cancelled{false};
  std::atomic<std::uint64_t> heartbeat_ns{0};  // steady-clock ns of last poll
  std::mutex mutex;
  std::string reason;  // set once by the first cancel()
};

}  // namespace detail

/// Cheap copyable handle onto a CancelSource's state. A default-constructed
/// token is null: never cancelled, heartbeats are no-ops.
class CancelToken {
 public:
  CancelToken() = default;

  bool valid() const { return state_ != nullptr; }

  bool cancelled() const {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_acquire);
  }

  /// Cancellation reason ("" while not cancelled or for a null token).
  std::string reason() const {
    if (state_ == nullptr) return {};
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->reason;
  }

  /// Stamps "the work is alive" for the watchdog's stall detector.
  void heartbeat() const {
    if (state_ != nullptr) {
      // bdlint:allow(no-relaxed-atomics): a monotonic liveness timestamp;
      // the watchdog only compares it against now(), no data rides on it.
      state_->heartbeat_ns.store(detail::cancel_now_ns(),
                                 std::memory_order_relaxed);
    }
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CancelState> state_;
};

class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<detail::CancelState>()) {
    // bdlint:allow(no-relaxed-atomics): initial heartbeat stamp (see above).
    state_->heartbeat_ns.store(detail::cancel_now_ns(),
                               std::memory_order_relaxed);
  }

  CancelToken token() const { return CancelToken(state_); }

  /// Requests cooperative cancellation; the first reason wins.
  void cancel(const std::string& reason) {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->reason.empty()) state_->reason = reason;
    }
    state_->cancelled.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  /// Seconds since the most recent heartbeat (or since construction).
  double heartbeat_age_seconds() const {
    const std::uint64_t last =  // bdlint:allow(no-relaxed-atomics)
        state_->heartbeat_ns.load(std::memory_order_relaxed);
    return static_cast<double>(detail::cancel_now_ns() - last) * 1e-9;
  }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

/// RAII installation of the calling thread's current token (nesting
/// restores the previous one). Owned by Supervisor attempts; tests install
/// scopes directly to drive loops without a supervisor.
class CancelScope {
 public:
  explicit CancelScope(CancelToken token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken previous_;
};

/// The calling thread's current token (null outside any CancelScope).
CancelToken current_cancel_token();

/// Batch/round-boundary check: stamps the heartbeat, runs any armed
/// `hang@n` fault (a simulated stall that sits here, heartbeat-silent,
/// until the watchdog cancels), and throws Cancelled when the current
/// token has been cancelled. `where` must describe the boundary (e.g.
/// "train.batch") and appears in the Cancelled message.
void poll_cancellation(const char* where);

}  // namespace bd::robust
