#include "robust/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "robust/fault_injector.h"
#include "util/env.h"
#include "util/logging.h"

namespace bd::robust {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
}

/// Minimal parser for the journal's own subset of JSON. Returns false on
/// any deviation (including a torn line) instead of throwing, so the
/// caller decides whether the damage is tolerable.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : s_(line) {}

  bool parse(std::string& key, JournalFields& fields) {
    return expect('{') && parse_member_name("key") && parse_string(key) &&
           expect(',') && parse_member_name("fields") && expect('{') &&
           parse_fields(fields) && expect('}') && expect('}') &&
           pos_ == s_.size();
  }

 private:
  bool expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool parse_member_name(const std::string& name) {
    std::string got;
    return parse_string(got) && got == name && expect(':');
  }

  bool parse_string(std::string& out) {
    out.clear();
    if (!expect('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default: return false;
      }
    }
    return false;  // unterminated string (torn line)
  }

  bool parse_fields(JournalFields& fields) {
    if (pos_ < s_.size() && s_[pos_] == '}') return true;  // empty object
    while (true) {
      std::string name, value;
      if (!parse_string(name) || !expect(':') || !parse_string(value)) {
        return false;
      }
      fields[name] = value;
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return true;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_journal_line(const std::string& key,
                                const JournalFields& fields) {
  std::string line = "{\"key\":\"";
  append_escaped(line, key);
  line += "\",\"fields\":{";
  bool first = true;
  for (const auto& [name, value] : fields) {
    if (!first) line += ',';
    first = false;
    line += '"';
    append_escaped(line, name);
    line += "\":\"";
    append_escaped(line, value);
    line += '"';
  }
  line += "}}\n";
  return line;
}

bool parse_journal_line(const std::string& line, std::string& key,
                        JournalFields& fields) {
  return LineParser(line).parse(key, fields);
}

bool journal_fsync_enabled() {
  return env_int("BDPROTO_JOURNAL_FSYNC").value_or(0) != 0;
}

void append_line_atomic(const std::string& path, const std::string& line) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("journal: cannot open '" + path +
                             "' for append: " + std::strerror(errno));
  }
  ssize_t n;
  do {
    n = ::write(fd, line.data(), line.size());
  } while (n < 0 && errno == EINTR);
  // A short write on a regular file is an ENOSPC-class failure. The torn
  // tail (if any bytes landed) is exactly the shape every reader already
  // tolerates and drops.
  if (n != static_cast<ssize_t>(line.size())) {
    const std::string reason =
        n < 0 ? std::strerror(errno) : "short write";
    ::close(fd);
    throw std::runtime_error("journal: write failure on '" + path +
                             "': " + reason);
  }
  if (journal_fsync_enabled()) ::fsync(fd);
  ::close(fd);
}

RunJournal::RunJournal(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // journal does not exist yet: start empty

  std::size_t line_no = 0;
  bool reterminate = false;  // final line is intact but lost its newline
  std::string line;
  while (true) {
    const std::streamoff start = in.tellg();
    if (!std::getline(in, line)) break;
    ++line_no;
    const bool has_newline = !in.eof();
    if (line.empty()) continue;

    std::string key;
    JournalFields fields;
    if (parse_journal_line(line, key, fields)) {
      entries_[key] = std::move(fields);
      reterminate = !has_newline;
      continue;
    }
    // Damaged line. A torn FINAL line is the expected shape after a kill
    // mid-append: drop it by truncating the file back to the last intact
    // entry. Damage anywhere else is corruption worth failing loudly.
    if (in.peek() == std::ifstream::traits_type::eof()) {
      BD_LOG(Warn) << "journal '" << path_ << "': dropping torn final line "
                   << line_no << " (" << line.size() << " bytes)";
      in.close();
      std::filesystem::resize_file(path_, static_cast<std::uintmax_t>(start));
      return;
    }
    throw std::runtime_error("journal '" + path_ + "': malformed line " +
                             std::to_string(line_no));
  }

  if (reterminate) {
    in.close();
    append_line_atomic(path_, "\n");
  }
}

const JournalFields* RunJournal::find(const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void RunJournal::record(const std::string& key, const JournalFields& fields) {
  if (!enabled()) return;

  // Fault sites fire BEFORE any byte is written: a failed append that the
  // supervisor retries must re-append a whole line, never extend a torn one.
  auto& faults = FaultInjector::instance();
  faults.fire_slow_io("journal append '" + path_ + "'");
  faults.fire_io("journal append '" + path_ + "'");

  append_line_atomic(path_, encode_journal_line(key, fields));
  entries_[key] = fields;
}

std::string stable_hash_hex(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string exact_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace bd::robust
