// Divergence monitor for training loops.
//
// Watches per-batch losses (and caller-supplied gradient norms) for NaN /
// Inf / explosion. When a bad value appears the owning loop rolls back to
// its last good parameter snapshot, multiplies the learning rate by
// `lr_backoff`, and retries — a bounded number of times. The guard itself
// is parameter-agnostic (snapshots stay with the caller, keeping this
// layer free of nn dependencies); it owns the detection policy, the retry
// budget, and the recovery log that surfaces in result structs.
//
// All decisions are pure functions of the observed loss sequence, so a
// guarded run is bitwise identical across BDPROTO_THREADS settings
// (kernel reductions are thread-count invariant; see runtime/thread_pool.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bd::robust {

struct TrainGuardConfig {
  bool enabled = true;
  /// A finite loss counts as an explosion when it exceeds
  /// explode_factor * (1 + lowest finite loss seen so far).
  double explode_factor = 1e3;
  /// Learning-rate multiplier applied on each rollback.
  double lr_backoff = 0.5;
  /// Rollbacks allowed before the guard gives up (training then stops at
  /// the last good snapshot instead of looping forever).
  std::int64_t max_recoveries = 3;
};

struct GuardEvent {
  std::int64_t epoch = 0;
  std::int64_t step = 0;    // batch index within the epoch
  double bad_value = 0.0;   // the offending loss (NaN/Inf/huge)
  double lr_after = 0.0;    // learning rate after backoff
  std::string reason;       // "non-finite loss" | "loss explosion" | ...
};

/// Recovery history embedded in training result structs.
struct GuardReport {
  std::int64_t recoveries = 0;
  /// True when max_recoveries was exhausted and training stopped early at
  /// the last good snapshot.
  bool gave_up = false;
  std::vector<GuardEvent> events;

  /// "2 recoveries (non-finite loss@e1s3, loss explosion@e2s0)" or "".
  std::string summary() const;
};

class TrainGuard {
 public:
  explicit TrainGuard(TrainGuardConfig config) : config_(config) {}

  const TrainGuardConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  /// Classifies a batch loss. Returns nullptr when the value is healthy,
  /// otherwise a static reason string. Healthy values update the
  /// explosion reference; call once per optimizer step.
  const char* check_loss(double loss);

  /// Classifies a post-backward gradient norm the same way.
  const char* check_grad_norm(double norm) const;

  /// True while the retry budget allows another rollback.
  bool can_recover() const {
    return report_.recoveries < config_.max_recoveries;
  }

  /// Records a rollback (the caller restored its snapshot and backed off
  /// its learning rate to `lr_after`).
  void record_recovery(std::int64_t epoch, std::int64_t step, double bad_value,
                       double lr_after, const std::string& reason);

  /// Records that the budget ran out and training stopped early.
  void record_exhausted() { report_.gave_up = true; }

  const GuardReport& report() const { return report_; }

 private:
  TrainGuardConfig config_;
  GuardReport report_;
  double best_loss_ = -1.0;  // lowest finite loss seen (< 0: none yet)
};

}  // namespace bd::robust
