// Reverse-mode automatic differentiation over a lazy graph IR.
//
// A Var is a handle to a graph node (see graph.h). Operations in
// autograd/ops.h are graph BUILDERS: they validate and infer shapes
// immediately (shape_infer.h) but run no kernels. Execution happens at the
// value()/backward() boundaries through the deterministic scheduler in
// schedule.h, which also plans arena-backed gradient buffers (arena.h).
// The API is source-compatible with the old eager tape; shape() now
// reports the build-time inferred shape without forcing execution.
//
// The defense code consumes exactly these gradients: the paper's filter
// score xi (Eq. 3) is the mean absolute entry of a conv weight's grad under
// the unlearning loss (Eq. 2).
#pragma once

#include <memory>

#include "autograd/graph.h"
#include "tensor/tensor.h"

namespace bd::ag {

/// True while gradient recording is enabled (see NoGradGuard).
bool grad_recording_enabled();

/// RAII scope that disables gradient recording (inference / evaluation).
/// Ops built inside still join the lazy graph so their values can be
/// computed on demand, but they are terminals for backward().
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

class Var {
 public:
  /// Undefined handle.
  Var() = default;

  /// Leaf node wrapping `value`.
  explicit Var(Tensor value, bool requires_grad = false);

  /// Handle adopting an existing node (used by the ops.h builders).
  static Var from_node(NodePtr node);

  bool defined() const { return static_cast<bool>(node_); }
  /// The node's value, materializing the pending subgraph if needed.
  const Tensor& value() const;
  /// Mutable access for optimizers; only valid on leaves.
  Tensor& mutable_value();
  const Tensor& grad() const;
  bool has_grad() const;
  bool requires_grad() const;
  bool is_leaf() const;
  /// Build-time inferred shape; never triggers execution.
  const Shape& shape() const;

  /// Clears this node's gradient.
  void zero_grad();

  /// Runs reverse-mode accumulation from this (scalar) node.
  void backward();

  /// Leaf sharing this node's (materialized) value, detached from the
  /// graph.
  Var detach() const;

  NodePtr node() const { return node_; }

 private:
  NodePtr node_;
};

}  // namespace bd::ag
