// Reverse-mode automatic differentiation.
//
// A Var is a handle to a graph node holding a Tensor value and (after
// backward()) a gradient. Operations in autograd/ops.h build the graph
// dynamically; Var::backward() runs reverse topological accumulation.
// The defense code consumes exactly these gradients: the paper's filter
// score xi (Eq. 3) is the mean absolute entry of a conv weight's grad under
// the unlearning loss (Eq. 2).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace bd::ag {

struct Node;
using NodePtr = std::shared_ptr<Node>;

struct Node {
  Tensor value;
  Tensor grad;  // undefined until first accumulation
  bool requires_grad = false;
  bool is_leaf = true;
  std::vector<NodePtr> parents;
  /// Propagates this node's grad into parents' grads. Null for leaves.
  std::function<void(Node&)> backward_fn;
  const char* op_name = "leaf";

  /// Adds g to this node's grad (allocating it on first use).
  void accumulate_grad(const Tensor& g);
};

/// True while gradient recording is disabled (see NoGradGuard).
bool grad_recording_enabled();

/// RAII scope that disables graph construction (inference / evaluation).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

class Var {
 public:
  /// Undefined handle.
  Var() = default;

  /// Leaf node wrapping `value`.
  explicit Var(Tensor value, bool requires_grad = false);

  /// Interior node produced by an op.
  static Var op_result(Tensor value, std::vector<Var> parents,
                       std::function<void(Node&)> backward_fn,
                       const char* op_name);

  bool defined() const { return static_cast<bool>(node_); }
  const Tensor& value() const;
  /// Mutable access for optimizers; only valid on leaves.
  Tensor& mutable_value();
  const Tensor& grad() const;
  bool has_grad() const;
  bool requires_grad() const;
  bool is_leaf() const;
  const Shape& shape() const { return value().shape(); }

  /// Clears this node's gradient.
  void zero_grad();

  /// Runs reverse-mode accumulation from this (scalar) node.
  void backward();

  /// Leaf sharing this node's value tensor, detached from the graph.
  Var detach() const;

  NodePtr node() const { return node_; }

 private:
  NodePtr node_;
};

}  // namespace bd::ag
