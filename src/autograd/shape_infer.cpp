#include "autograd/shape_infer.h"

#include <stdexcept>
#include <string>

namespace bd::ag {

std::vector<std::int64_t> contiguous_strides(const Shape& shape) {
  std::vector<std::int64_t> strides(shape.size(), 1);
  for (std::size_t d = shape.size(); d-- > 1;) {
    strides[d - 1] = strides[d] * shape[d];
  }
  return strides;
}

Shape broadcast_result(const Shape& a, const Shape& b, const char* op) {
  const std::size_t rank = std::max(a.size(), b.size());
  Shape out(rank, 1);
  for (std::size_t d = 0; d < rank; ++d) {
    // Right-aligned: dimension d of the result pairs the trailing dims.
    const std::int64_t da =
        d < a.size() ? a[a.size() - 1 - d] : 1;
    const std::int64_t db =
        d < b.size() ? b[b.size() - 1 - d] : 1;
    if (da != db && da != 1 && db != 1) {
      throw std::invalid_argument(std::string(op) +
                                  ": incompatible shapes for broadcasting " +
                                  shape_string(a) + " and " +
                                  shape_string(b));
    }
    out[rank - 1 - d] = std::max(da, db);
  }
  return out;
}

std::vector<std::int64_t> broadcast_strides(const Shape& from,
                                            const Shape& to) {
  if (from.size() > to.size()) {
    throw std::invalid_argument("broadcast_strides: rank " +
                                std::to_string(from.size()) +
                                " does not broadcast to rank " +
                                std::to_string(to.size()));
  }
  const std::vector<std::int64_t> from_strides = contiguous_strides(from);
  std::vector<std::int64_t> out(to.size(), 0);
  for (std::size_t d = 0; d < to.size(); ++d) {
    const std::size_t rd = to.size() - 1 - d;  // aligned from the right
    if (d >= from.size()) continue;            // missing dim: stride 0
    const std::size_t fd = from.size() - 1 - d;
    if (from[fd] == to[rd]) {
      out[rd] = from_strides[fd];
    } else if (from[fd] == 1) {
      out[rd] = 0;  // stretched dim: every index reads the same element
    } else {
      throw std::invalid_argument("broadcast_strides: " + shape_string(from) +
                                  " does not broadcast to " +
                                  shape_string(to));
    }
  }
  return out;
}

std::vector<std::int64_t> normalize_axes(
    const std::vector<std::int64_t>& axes, std::size_t rank) {
  std::vector<std::int64_t> out;
  out.reserve(axes.size());
  for (std::int64_t ax : axes) {
    if (ax < 0) ax += static_cast<std::int64_t>(rank);
    if (ax < 0 || ax >= static_cast<std::int64_t>(rank)) {
      throw std::invalid_argument("reduce_sum: axis out of range");
    }
    // Duplicates pass through: the reduce kernel collapses them via its
    // per-dimension flag array, and inference must agree with it.
    out.push_back(ax);
  }
  return out;
}

Shape reduce_result(const Shape& in, const std::vector<std::int64_t>& axes,
                    bool keepdim) {
  const auto norm = normalize_axes(axes, in.size());
  std::vector<bool> reduced(in.size(), false);
  for (const std::int64_t ax : norm) {
    reduced[static_cast<std::size_t>(ax)] = true;
  }
  Shape out;
  for (std::size_t d = 0; d < in.size(); ++d) {
    if (reduced[d]) {
      if (keepdim) out.push_back(1);
    } else {
      out.push_back(in[d]);
    }
  }
  return out;
}

Shape reduce_kept_shape(const Shape& in,
                        const std::vector<std::int64_t>& axes) {
  const auto norm = normalize_axes(axes, in.size());
  Shape kept = in;
  for (const std::int64_t ax : norm) {
    kept[static_cast<std::size_t>(ax)] = 1;
  }
  return kept;
}

Shape matmul_result(const Shape& a, const Shape& b) {
  if (a.size() != 2 || b.size() != 2 || a[1] != b[0]) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                shape_string(a) + " and " + shape_string(b));
  }
  return {a[0], b[1]};
}

Shape conv2d_result(const Shape& input, const Shape& weight,
                    const Shape* bias, const Conv2dSpec& spec,
                    bool depthwise) {
  const char* op = depthwise ? "depthwise_conv2d" : "conv2d";
  if (input.size() != 4 || weight.size() != 4) {
    throw std::invalid_argument(std::string(op) +
                                ": input and weight must be rank 4");
  }
  if (depthwise) {
    if (weight[0] != input[1] || weight[1] != 1) {
      throw std::invalid_argument(
          "depthwise_conv2d: weight must be (C,1,KH,KW) with C = input "
          "channels, got " +
          shape_string(weight) + " for input " + shape_string(input));
    }
  } else if (weight[1] != input[1]) {
    throw std::invalid_argument("conv2d: input channels " +
                                std::to_string(input[1]) +
                                " != weight channels " +
                                std::to_string(weight[1]));
  }
  const std::int64_t out_channels = depthwise ? input[1] : weight[0];
  if (bias != nullptr &&
      (bias->size() != 1 || (*bias)[0] != out_channels)) {
    throw std::invalid_argument(std::string(op) +
                                ": bias must be rank 1 of size Cout");
  }
  const std::int64_t oh =
      conv_out_size(input[2], weight[2], spec.stride, spec.padding);
  const std::int64_t ow =
      conv_out_size(input[3], weight[3], spec.stride, spec.padding);
  return {input[0], out_channels, oh, ow};
}

Shape pool2d_result(const Shape& input, const Pool2dSpec& spec) {
  if (input.size() != 4) {
    throw std::invalid_argument("pool2d: input must be rank 4 (NCHW)");
  }
  const std::int64_t oh =
      conv_out_size(input[2], spec.kernel, spec.stride, spec.padding);
  const std::int64_t ow =
      conv_out_size(input[3], spec.kernel, spec.stride, spec.padding);
  return {input[0], input[1], oh, ow};
}

void require_rank2(const Shape& s, const char* op) {
  if (s.size() != 2) {
    throw std::invalid_argument(std::string(op) + ": expected rank 2");
  }
}

}  // namespace bd::ag
