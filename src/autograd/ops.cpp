#include "autograd/ops.h"

#include <stdexcept>
#include <string>

#include "autograd/shape_infer.h"

namespace bd::ag {

namespace {

// Builds an op node: inferred shape, defined inputs, grad flags. No kernel
// runs here — execution is deferred to the value()/backward() boundaries.
// Mirrors the eager tape's recording rule: the node participates in
// backward only when recording is on and some input requires grad.
Var make_op(OpKind kind, Shape shape, std::initializer_list<const Var*> ins) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->shape = std::move(shape);
  for (const Var* v : ins) {
    if (v->defined()) n->inputs.push_back(v->node());
  }
  if (grad_recording_enabled()) {
    for (const auto& in : n->inputs) {
      if (in->requires_grad) {
        n->requires_grad = true;
        n->is_leaf = false;
        break;
      }
    }
  }
  return Var::from_node(std::move(n));
}

}  // namespace

Var add(const Var& a, const Var& b) {
  return make_op(OpKind::kAdd, broadcast_result(a.shape(), b.shape(), "add"),
                 {&a, &b});
}

Var sub(const Var& a, const Var& b) {
  return make_op(OpKind::kSub, broadcast_result(a.shape(), b.shape(), "sub"),
                 {&a, &b});
}

Var mul(const Var& a, const Var& b) {
  return make_op(OpKind::kMul, broadcast_result(a.shape(), b.shape(), "mul"),
                 {&a, &b});
}

Var div(const Var& a, const Var& b) {
  return make_op(OpKind::kDiv, broadcast_result(a.shape(), b.shape(), "div"),
                 {&a, &b});
}

Var add_scalar(const Var& a, float s) {
  Var out = make_op(OpKind::kAddScalar, a.shape(), {&a});
  out.node()->scalar = s;
  return out;
}

Var mul_scalar(const Var& a, float s) {
  Var out = make_op(OpKind::kMulScalar, a.shape(), {&a});
  out.node()->scalar = s;
  return out;
}

Var neg(const Var& a) { return mul_scalar(a, -1.0f); }

Var exp(const Var& a) { return make_op(OpKind::kExp, a.shape(), {&a}); }

Var log(const Var& a) { return make_op(OpKind::kLog, a.shape(), {&a}); }

Var sqrt(const Var& a) { return make_op(OpKind::kSqrt, a.shape(), {&a}); }

Var abs(const Var& a) { return make_op(OpKind::kAbs, a.shape(), {&a}); }

Var pow_scalar(const Var& a, float p) {
  Var out = make_op(OpKind::kPowScalar, a.shape(), {&a});
  out.node()->scalar = p;
  return out;
}

Var clamp(const Var& a, float lo, float hi) {
  Var out = make_op(OpKind::kClamp, a.shape(), {&a});
  out.node()->lo = lo;
  out.node()->hi = hi;
  return out;
}

Var relu(const Var& a) { return make_op(OpKind::kRelu, a.shape(), {&a}); }

Var sigmoid(const Var& a) {
  return make_op(OpKind::kSigmoid, a.shape(), {&a});
}

Var tanh(const Var& a) { return make_op(OpKind::kTanh, a.shape(), {&a}); }

Var hardsigmoid(const Var& a) {
  return make_op(OpKind::kHardsigmoid, a.shape(), {&a});
}

Var hardswish(const Var& a) {
  return make_op(OpKind::kHardswish, a.shape(), {&a});
}

Var reshape(const Var& a, Shape shape) {
  if (shape_numel(shape) != shape_numel(a.shape())) {
    // Same contract (and message) as Tensor::reshape, raised at build time.
    throw std::invalid_argument("Tensor::reshape: cannot reshape " +
                                shape_string(a.shape()) + " to " +
                                shape_string(shape));
  }
  return make_op(OpKind::kReshape, std::move(shape), {&a});
}

Var flatten2d(const Var& a) {
  const Shape& s = a.shape();
  if (s.size() != 4) {
    throw std::invalid_argument("flatten2d: expected rank-4 input");
  }
  return reshape(a, {s[0], s[1] * s[2] * s[3]});
}

Var reduce_sum(const Var& a, const std::vector<std::int64_t>& axes,
               bool keepdim) {
  Var out = make_op(OpKind::kReduceSum,
                    reduce_result(a.shape(), axes, keepdim), {&a});
  Node& n = *out.node();
  n.axes = axes;
  n.keepdim = keepdim;
  n.kept_shape = reduce_kept_shape(a.shape(), axes);
  return out;
}

Var reduce_mean(const Var& a, const std::vector<std::int64_t>& axes,
                bool keepdim) {
  Var s = reduce_sum(a, axes, keepdim);
  const auto denom = static_cast<float>(
      shape_numel(a.shape()) /
      std::max<std::int64_t>(1, shape_numel(s.shape())));
  return mul_scalar(s, 1.0f / denom);
}

Var sum_all(const Var& a) {
  static_cast<void>(a.shape());  // throws on an undefined handle
  return make_op(OpKind::kSumAll, Shape{}, {&a});
}

Var mean_all(const Var& a) {
  return mul_scalar(sum_all(a),
                    1.0f / static_cast<float>(shape_numel(a.shape())));
}

Var matmul(const Var& a, const Var& b) {
  return make_op(OpKind::kMatmul, matmul_result(a.shape(), b.shape()),
                 {&a, &b});
}

Var conv2d(const Var& input, const Var& weight, const Var& bias,
           const Conv2dSpec& spec) {
  const Shape* bias_shape = bias.defined() ? &bias.shape() : nullptr;
  Var out = make_op(OpKind::kConv2d,
                    conv2d_result(input.shape(), weight.shape(), bias_shape,
                                  spec, /*depthwise=*/false),
                    {&input, &weight, &bias});
  out.node()->conv = spec;
  return out;
}

Var depthwise_conv2d(const Var& input, const Var& weight, const Var& bias,
                     const Conv2dSpec& spec) {
  const Shape* bias_shape = bias.defined() ? &bias.shape() : nullptr;
  Var out = make_op(OpKind::kDepthwiseConv2d,
                    conv2d_result(input.shape(), weight.shape(), bias_shape,
                                  spec, /*depthwise=*/true),
                    {&input, &weight, &bias});
  out.node()->conv = spec;
  return out;
}

Var maxpool2d(const Var& input, const Pool2dSpec& spec) {
  Var out = make_op(OpKind::kMaxPool2d, pool2d_result(input.shape(), spec),
                    {&input});
  out.node()->pool = spec;
  return out;
}

Var avgpool2d(const Var& input, const Pool2dSpec& spec) {
  Var out = make_op(OpKind::kAvgPool2d, pool2d_result(input.shape(), spec),
                    {&input});
  out.node()->pool = spec;
  return out;
}

Var global_avgpool(const Var& input) {
  const Shape& s = input.shape();
  if (s.size() != 4) {
    throw std::invalid_argument("pool2d: input must be rank 4 (NCHW)");
  }
  return make_op(OpKind::kGlobalAvgPool, Shape{s[0], s[1], 1, 1}, {&input});
}

Var log_softmax(const Var& logits) {
  require_rank2(logits.shape(), "log_softmax_rows");
  return make_op(OpKind::kLogSoftmax, logits.shape(), {&logits});
}

Var nll_loss(const Var& log_probs, const std::vector<std::int64_t>& labels) {
  const Shape& lp = log_probs.shape();
  if (lp.size() != 2 ||
      lp[0] != static_cast<std::int64_t>(labels.size())) {
    throw std::invalid_argument("nll_loss: log_probs (N,C) and N labels");
  }
  for (const std::int64_t y : labels) {
    if (y < 0 || y >= lp[1]) {
      throw std::invalid_argument("nll_loss: label out of range");
    }
  }
  Var out = make_op(OpKind::kNllLoss, Shape{}, {&log_probs});
  out.node()->labels =
      std::make_shared<const std::vector<std::int64_t>>(labels);
  return out;
}

Var cross_entropy(const Var& logits,
                  const std::vector<std::int64_t>& labels) {
  return nll_loss(log_softmax(logits), labels);
}

Var mse_loss(const Var& a, const Var& b) {
  if (a.shape() != b.shape()) {
    // check_same_shape's contract, applied to inferred shapes.
    throw std::invalid_argument("mse_loss: shape mismatch " +
                                shape_string(a.shape()) + " vs " +
                                shape_string(b.shape()));
  }
  Var d = sub(a, b);
  return mean_all(mul(d, d));
}

}  // namespace bd::ag
