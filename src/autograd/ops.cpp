#include "autograd/ops.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace bd::ag {

namespace {

// Accumulates `g` into `target` if it participates in the graph, reducing
// over broadcast dimensions first.
void backprop_to(const NodePtr& target, const Tensor& g) {
  if (!target || !target->requires_grad) return;
  if (g.shape() == target->value.shape()) {
    target->accumulate_grad(g);
  } else {
    target->accumulate_grad(reduce_to_shape(g, target->value.shape()));
  }
}

}  // namespace

Var add(const Var& a, const Var& b) {
  auto pa = a.node(), pb = b.node();
  return Var::op_result(
      bd::add(a.value(), b.value()), {a, b},
      [pa, pb](Node& n) {
        backprop_to(pa, n.grad);
        backprop_to(pb, n.grad);
      },
      "add");
}

Var sub(const Var& a, const Var& b) {
  auto pa = a.node(), pb = b.node();
  return Var::op_result(
      bd::sub(a.value(), b.value()), {a, b},
      [pa, pb](Node& n) {
        backprop_to(pa, n.grad);
        backprop_to(pb, bd::neg(n.grad));
      },
      "sub");
}

Var mul(const Var& a, const Var& b) {
  auto pa = a.node(), pb = b.node();
  const Tensor av = a.value(), bv = b.value();
  return Var::op_result(
      bd::mul(av, bv), {a, b},
      [pa, pb, av, bv](Node& n) {
        backprop_to(pa, bd::mul(n.grad, bv));
        backprop_to(pb, bd::mul(n.grad, av));
      },
      "mul");
}

Var div(const Var& a, const Var& b) {
  auto pa = a.node(), pb = b.node();
  const Tensor av = a.value(), bv = b.value();
  return Var::op_result(
      bd::div(av, bv), {a, b},
      [pa, pb, av, bv](Node& n) {
        backprop_to(pa, bd::div(n.grad, bv));
        // d/db (a/b) = -a / b^2
        backprop_to(pb, bd::neg(bd::div(bd::mul(n.grad, av), bd::mul(bv, bv))));
      },
      "div");
}

Var add_scalar(const Var& a, float s) {
  auto pa = a.node();
  return Var::op_result(
      bd::add_scalar(a.value(), s), {a},
      [pa](Node& n) { backprop_to(pa, n.grad); }, "add_scalar");
}

Var mul_scalar(const Var& a, float s) {
  auto pa = a.node();
  return Var::op_result(
      bd::mul_scalar(a.value(), s), {a},
      [pa, s](Node& n) { backprop_to(pa, bd::mul_scalar(n.grad, s)); },
      "mul_scalar");
}

Var neg(const Var& a) { return mul_scalar(a, -1.0f); }

Var exp(const Var& a) {
  auto pa = a.node();
  Tensor out = bd::exp(a.value());
  return Var::op_result(
      out, {a},
      [pa, out](Node& n) { backprop_to(pa, bd::mul(n.grad, out)); }, "exp");
}

Var log(const Var& a) {
  auto pa = a.node();
  const Tensor av = a.value();
  return Var::op_result(
      bd::log(av), {a},
      [pa, av](Node& n) { backprop_to(pa, bd::div(n.grad, av)); }, "log");
}

Var sqrt(const Var& a) {
  auto pa = a.node();
  Tensor out = bd::sqrt(a.value());
  return Var::op_result(
      out, {a},
      [pa, out](Node& n) {
        backprop_to(pa, bd::div(n.grad, bd::mul_scalar(out, 2.0f)));
      },
      "sqrt");
}

Var abs(const Var& a) {
  auto pa = a.node();
  const Tensor av = a.value();
  return Var::op_result(
      bd::abs(av), {a},
      [pa, av](Node& n) { backprop_to(pa, bd::mul(n.grad, bd::sign(av))); },
      "abs");
}

Var pow_scalar(const Var& a, float p) {
  auto pa = a.node();
  const Tensor av = a.value();
  return Var::op_result(
      bd::pow_scalar(av, p), {a},
      [pa, av, p](Node& n) {
        backprop_to(pa,
                    bd::mul(n.grad,
                            bd::mul_scalar(bd::pow_scalar(av, p - 1.0f), p)));
      },
      "pow_scalar");
}

Var clamp(const Var& a, float lo, float hi) {
  auto pa = a.node();
  const Tensor av = a.value();
  return Var::op_result(
      bd::clamp(av, lo, hi), {a},
      [pa, av, lo, hi](Node& n) {
        const Tensor mask = bd::unary(
            av, [lo, hi](float x) { return (x > lo && x < hi) ? 1.0f : 0.0f; });
        backprop_to(pa, bd::mul(n.grad, mask));
      },
      "clamp");
}

Var relu(const Var& a) {
  auto pa = a.node();
  const Tensor av = a.value();
  return Var::op_result(
      bd::relu(av), {a},
      [pa, av](Node& n) {
        const Tensor mask =
            bd::unary(av, [](float x) { return x > 0 ? 1.0f : 0.0f; });
        backprop_to(pa, bd::mul(n.grad, mask));
      },
      "relu");
}

Var sigmoid(const Var& a) {
  auto pa = a.node();
  Tensor out = bd::sigmoid(a.value());
  return Var::op_result(
      out, {a},
      [pa, out](Node& n) {
        const Tensor d =
            bd::unary(out, [](float s) { return s * (1.0f - s); });
        backprop_to(pa, bd::mul(n.grad, d));
      },
      "sigmoid");
}

Var tanh(const Var& a) {
  auto pa = a.node();
  Tensor out = bd::tanh(a.value());
  return Var::op_result(
      out, {a},
      [pa, out](Node& n) {
        const Tensor d = bd::unary(out, [](float t) { return 1.0f - t * t; });
        backprop_to(pa, bd::mul(n.grad, d));
      },
      "tanh");
}

Var hardsigmoid(const Var& a) {
  auto pa = a.node();
  const Tensor av = a.value();
  Tensor out = bd::unary(av, [](float x) {
    return std::min(1.0f, std::max(0.0f, (x + 3.0f) / 6.0f));
  });
  return Var::op_result(
      out, {a},
      [pa, av](Node& n) {
        const Tensor d = bd::unary(av, [](float x) {
          return (x > -3.0f && x < 3.0f) ? (1.0f / 6.0f) : 0.0f;
        });
        backprop_to(pa, bd::mul(n.grad, d));
      },
      "hardsigmoid");
}

Var hardswish(const Var& a) {
  auto pa = a.node();
  const Tensor av = a.value();
  Tensor out = bd::unary(av, [](float x) {
    return x * std::min(1.0f, std::max(0.0f, (x + 3.0f) / 6.0f));
  });
  return Var::op_result(
      out, {a},
      [pa, av](Node& n) {
        const Tensor d = bd::unary(av, [](float x) {
          if (x <= -3.0f) return 0.0f;
          if (x >= 3.0f) return 1.0f;
          return (2.0f * x + 3.0f) / 6.0f;
        });
        backprop_to(pa, bd::mul(n.grad, d));
      },
      "hardswish");
}

Var reshape(const Var& a, Shape shape) {
  auto pa = a.node();
  const Shape original = a.value().shape();
  return Var::op_result(
      a.value().reshape(shape), {a},
      [pa, original](Node& n) {
        backprop_to(pa, n.grad.reshape(original));
      },
      "reshape");
}

Var flatten2d(const Var& a) {
  const auto& s = a.value().shape();
  if (s.size() != 4) {
    throw std::invalid_argument("flatten2d: expected rank-4 input");
  }
  return reshape(a, {s[0], s[1] * s[2] * s[3]});
}

Var reduce_sum(const Var& a, const std::vector<std::int64_t>& axes,
               bool keepdim) {
  auto pa = a.node();
  const Shape in_shape = a.value().shape();
  Tensor out = bd::reduce_sum(a.value(), axes, keepdim);
  const Shape kept = keepdim ? out.shape() : [&] {
    // Rebuild the keepdim shape so the gradient can broadcast back.
    Shape k(in_shape.size(), 0);
    std::vector<bool> reduced(in_shape.size(), false);
    for (auto ax : axes) {
      if (ax < 0) ax += static_cast<std::int64_t>(in_shape.size());
      reduced[static_cast<std::size_t>(ax)] = true;
    }
    for (std::size_t d = 0; d < in_shape.size(); ++d) {
      k[d] = reduced[d] ? 1 : in_shape[d];
    }
    return k;
  }();
  return Var::op_result(
      out, {a},
      [pa, in_shape, kept](Node& n) {
        // Broadcast the (keepdim-shaped) gradient back over reduced dims.
        const Tensor g = n.grad.reshape(kept);
        backprop_to(pa, bd::add(g, Tensor::zeros(in_shape)));
      },
      "reduce_sum");
}

Var reduce_mean(const Var& a, const std::vector<std::int64_t>& axes,
                bool keepdim) {
  Var s = reduce_sum(a, axes, keepdim);
  const auto denom = static_cast<float>(a.value().numel() /
                                        std::max<std::int64_t>(1, s.value().numel()));
  return mul_scalar(s, 1.0f / denom);
}

Var sum_all(const Var& a) {
  auto pa = a.node();
  const Shape in_shape = a.value().shape();
  return Var::op_result(
      Tensor::scalar(bd::sum_all(a.value())), {a},
      [pa, in_shape](Node& n) {
        backprop_to(pa, Tensor::full(in_shape, n.grad[0]));
      },
      "sum_all");
}

Var mean_all(const Var& a) {
  return mul_scalar(sum_all(a), 1.0f / static_cast<float>(a.value().numel()));
}

Var matmul(const Var& a, const Var& b) {
  auto pa = a.node(), pb = b.node();
  const Tensor av = a.value(), bv = b.value();
  return Var::op_result(
      bd::matmul(av, bv), {a, b},
      [pa, pb, av, bv](Node& n) {
        backprop_to(pa, bd::matmul(n.grad, transpose2d(bv)));
        backprop_to(pb, bd::matmul(transpose2d(av), n.grad));
      },
      "matmul");
}

Var conv2d(const Var& input, const Var& weight, const Var& bias,
           const Conv2dSpec& spec) {
  auto pi = input.node(), pw = weight.node();
  auto pb = bias.defined() ? bias.node() : NodePtr();
  const Tensor iv = input.value(), wv = weight.value();
  const Tensor bv = bias.defined() ? bias.value() : Tensor();
  const bool has_bias = bias.defined();
  return Var::op_result(
      conv2d_forward(iv, wv, bv, spec), {input, weight, bias},
      [pi, pw, pb, iv, wv, has_bias, spec](Node& n) {
        const Conv2dGrads grads =
            conv2d_backward(iv, wv, has_bias, n.grad, spec);
        backprop_to(pi, grads.grad_input);
        backprop_to(pw, grads.grad_weight);
        if (has_bias) backprop_to(pb, grads.grad_bias);
      },
      "conv2d");
}

Var depthwise_conv2d(const Var& input, const Var& weight, const Var& bias,
                     const Conv2dSpec& spec) {
  auto pi = input.node(), pw = weight.node();
  auto pb = bias.defined() ? bias.node() : NodePtr();
  const Tensor iv = input.value(), wv = weight.value();
  const Tensor bv = bias.defined() ? bias.value() : Tensor();
  const bool has_bias = bias.defined();
  return Var::op_result(
      depthwise_conv2d_forward(iv, wv, bv, spec), {input, weight, bias},
      [pi, pw, pb, iv, wv, has_bias, spec](Node& n) {
        const Conv2dGrads grads =
            depthwise_conv2d_backward(iv, wv, has_bias, n.grad, spec);
        backprop_to(pi, grads.grad_input);
        backprop_to(pw, grads.grad_weight);
        if (has_bias) backprop_to(pb, grads.grad_bias);
      },
      "depthwise_conv2d");
}

Var maxpool2d(const Var& input, const Pool2dSpec& spec) {
  auto pi = input.node();
  const Shape in_shape = input.value().shape();
  MaxPoolResult res = maxpool2d_forward(input.value(), spec);
  auto argmax = std::make_shared<std::vector<std::int64_t>>(
      std::move(res.argmax));
  return Var::op_result(
      std::move(res.output), {input},
      [pi, in_shape, argmax](Node& n) {
        backprop_to(pi, maxpool2d_backward(in_shape, *argmax, n.grad));
      },
      "maxpool2d");
}

Var avgpool2d(const Var& input, const Pool2dSpec& spec) {
  auto pi = input.node();
  const Shape in_shape = input.value().shape();
  return Var::op_result(
      avgpool2d_forward(input.value(), spec), {input},
      [pi, in_shape, spec](Node& n) {
        backprop_to(pi, avgpool2d_backward(in_shape, n.grad, spec));
      },
      "avgpool2d");
}

Var global_avgpool(const Var& input) {
  auto pi = input.node();
  const Shape in_shape = input.value().shape();
  return Var::op_result(
      global_avgpool_forward(input.value()), {input},
      [pi, in_shape](Node& n) {
        backprop_to(pi, global_avgpool_backward(in_shape, n.grad));
      },
      "global_avgpool");
}

Var log_softmax(const Var& logits) {
  auto pl = logits.node();
  Tensor out = log_softmax_rows(logits.value());
  return Var::op_result(
      out, {logits},
      [pl, out](Node& n) {
        // dL/dx = g - softmax(x) * sum_j(g_j) per row.
        const std::int64_t rows = out.size(0), cols = out.size(1);
        Tensor gin(out.shape());
        for (std::int64_t i = 0; i < rows; ++i) {
          const float* g = n.grad.data() + i * cols;
          const float* lp = out.data() + i * cols;
          float* o = gin.data() + i * cols;
          double gsum = 0.0;
          for (std::int64_t j = 0; j < cols; ++j) gsum += g[j];
          for (std::int64_t j = 0; j < cols; ++j) {
            o[j] = g[j] - std::exp(lp[j]) * static_cast<float>(gsum);
          }
        }
        backprop_to(pl, gin);
      },
      "log_softmax");
}

Var nll_loss(const Var& log_probs, const std::vector<std::int64_t>& labels) {
  const Tensor& lp = log_probs.value();
  if (lp.dim() != 2 ||
      lp.size(0) != static_cast<std::int64_t>(labels.size())) {
    throw std::invalid_argument("nll_loss: log_probs (N,C) and N labels");
  }
  const std::int64_t rows = lp.size(0), cols = lp.size(1);
  double loss = 0.0;
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= cols) {
      throw std::invalid_argument("nll_loss: label out of range");
    }
    loss -= lp.at2(i, y);
  }
  loss /= static_cast<double>(rows);

  auto pl = log_probs.node();
  auto labels_copy = std::make_shared<std::vector<std::int64_t>>(labels);
  const Shape lp_shape = lp.shape();
  return Var::op_result(
      Tensor::scalar(static_cast<float>(loss)), {log_probs},
      [pl, labels_copy, lp_shape](Node& n) {
        const float g = n.grad[0] / static_cast<float>(lp_shape[0]);
        Tensor gin(lp_shape);
        for (std::int64_t i = 0; i < lp_shape[0]; ++i) {
          gin.at2(i, (*labels_copy)[static_cast<std::size_t>(i)]) = -g;
        }
        backprop_to(pl, gin);
      },
      "nll_loss");
}

Var cross_entropy(const Var& logits,
                  const std::vector<std::int64_t>& labels) {
  return nll_loss(log_softmax(logits), labels);
}

Var mse_loss(const Var& a, const Var& b) {
  check_same_shape(a.value(), b.value(), "mse_loss");
  Var d = sub(a, b);
  return mean_all(mul(d, d));
}

}  // namespace bd::ag
