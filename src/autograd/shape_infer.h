// Build-time shape and stride inference for the autograd graph IR.
//
// Every ops.h builder infers its output shape from its input shapes alone,
// so graphs can be constructed, validated and memory-planned without
// running a single kernel. Broadcast normalization follows NumPy rules:
// shapes are right-aligned, size-1 (or missing) dimensions stretch, and the
// stretched dimensions of an operand get stride 0 — `broadcast_strides`
// returns exactly that stride vector, the representation a fused
// elementwise kernel (or a reference oracle, see tests/gradcheck_test.cpp)
// iterates with. Reduction inference mirrors reduce_sum's axis handling:
// negative axes wrap, reduced axes drop (or become 1 with keepdim).
//
// All functions throw std::invalid_argument on malformed inputs — the same
// type the eager kernels threw, so op-call-site error behaviour is
// unchanged by the lazy refactor.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/conv.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace bd::ag {

/// Row-major strides (in elements) of a contiguous tensor of `shape`.
std::vector<std::int64_t> contiguous_strides(const Shape& shape);

/// NumPy-rule broadcast result of `a` and `b`; throws std::invalid_argument
/// (with `op` in the message) when the shapes are incompatible.
Shape broadcast_result(const Shape& a, const Shape& b, const char* op);

/// Strides for reading a contiguous tensor of shape `from` as if it had
/// shape `to`: `from` is right-aligned against `to` and every stretched
/// (size-1 or missing) dimension gets stride 0. Throws when `from` does not
/// broadcast to `to`.
std::vector<std::int64_t> broadcast_strides(const Shape& from,
                                            const Shape& to);

/// Axes normalized to [0, rank): negative axes wrap, out-of-range axes
/// throw; duplicates pass through (the reduce kernel collapses them).
std::vector<std::int64_t> normalize_axes(
    const std::vector<std::int64_t>& axes, std::size_t rank);

/// Output shape of reduce_sum/reduce_mean over `axes`.
Shape reduce_result(const Shape& in, const std::vector<std::int64_t>& axes,
                    bool keepdim);

/// The keepdim-shaped view of a reduce result: reduced axes become 1. This
/// is the shape the reduction's gradient is viewed as before broadcasting
/// back over the input.
Shape reduce_kept_shape(const Shape& in,
                        const std::vector<std::int64_t>& axes);

/// (m,k) x (k,n) -> (m,n); rank and inner-dimension checks.
Shape matmul_result(const Shape& a, const Shape& b);

/// Conv2d output shape (N,Cout,OH,OW); validates ranks, channel agreement
/// and the optional bias shape. `has_bias` selects whether `bias` is
/// checked. `depthwise` switches to the (C,1,KH,KW) weight contract.
Shape conv2d_result(const Shape& input, const Shape& weight,
                    const Shape* bias, const Conv2dSpec& spec,
                    bool depthwise);

/// Pool output shape (N,C,OH,OW) for max/avg pooling.
Shape pool2d_result(const Shape& input, const Pool2dSpec& spec);

/// Validates a (rows, cols) shape for the row-wise softmax/NLL ops.
void require_rank2(const Shape& s, const char* op);

}  // namespace bd::ag
