#include "autograd/schedule.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "autograd/arena.h"
#include "autograd/exec.h"
#include "obs/obs.h"
#include "tensor/ops.h"

namespace bd::ag {

void materialize(const NodePtr& root) {
  if (!root || root->value.defined()) return;
  if (root->value_released) {
    throw std::logic_error("materialize: value of this node was recycled");
  }

  // Post-order DFS over the unmaterialized subgraph. The order is a pure
  // function of graph structure, so materialization is deterministic no
  // matter when value() forces it.
  std::vector<NodePtr> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<NodePtr, std::size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_input] = stack.back();
    if (next_input < node->inputs.size()) {
      const NodePtr& child = node->inputs[next_input++];
      if (!child->value.defined() && !visited.count(child.get())) {
        if (child->value_released) {
          throw std::logic_error(
              "materialize: value of a consumed node was recycled");
        }
        visited.insert(child.get());
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  bool any_requires_grad = false;
  for (const auto& n : order) {
    if (n->requires_grad) {
      any_requires_grad = true;
      break;
    }
  }

  // Value recycling is only legal in gradient-free passes: a backward pass
  // reads input values, so anything a grad-requiring node consumes must
  // outlive the pass. In pure inference the old eager engine freed each
  // intermediate when its Var left scope; recycling restores that peak.
  const bool recycle = !any_requires_grad;
  std::unordered_map<Node*, std::int64_t> consumer_edges;
  std::unordered_map<Node*, std::int64_t> remaining;
  if (recycle) {
    for (const auto& n : order) {
      for (const auto& in : n->inputs) ++consumer_edges[in.get()];
    }
    remaining = consumer_edges;
  }

  std::uint64_t recycled = 0;
  for (const auto& n : order) {
    execute_forward(*n);
    assert(n->value.shape() == n->shape &&
           "shape inference disagrees with the kernel");
    if (!recycle) continue;
    for (const auto& in : n->inputs) {
      const auto it = remaining.find(in.get());
      if (it == remaining.end() || --(it->second) != 0) continue;
      Node* c = in.get();
      // Eligible: an op node scheduled this pass, gradient-free, not the
      // root — and provably unreachable from outside the schedule: the only
      // NodePtr refs are our order vector (1) plus its consumers' input
      // edges. Any Var handle or out-of-schedule consumer raises use_count
      // above that and vetoes the release.
      if (c->kind == OpKind::kLeaf || c->requires_grad || c == root.get() ||
          !visited.count(c)) {
        continue;
      }
      const auto expected = 1 + consumer_edges[c];
      if (static_cast<std::int64_t>(in.use_count()) == expected) {
        c->value = Tensor();
        c->value_released = true;
        ++recycled;
      }
    }
  }

  // Gradient-free nodes never run backward; dropping their input edges
  // releases subgraph metadata and mirrors the eager tape, which recorded
  // no parents for them at all.
  for (const auto& n : order) {
    if (!n->requires_grad) n->inputs.clear();
  }

  BD_OBS_COUNT("autograd.nodes_materialized", order.size());
  if (recycled > 0) BD_OBS_COUNT("autograd.values_recycled", recycled);
}

void run_backward(const NodePtr& root) {
  if (shape_numel(root->shape) != 1) {
    throw std::logic_error("Var::backward requires a scalar output, got " +
                           shape_string(root->shape));
  }
  materialize(root);

  // Reverse topological order via iterative DFS over grad-requiring edges —
  // replicated exactly from the eager tape so gradient accumulation happens
  // in the identical sequence (the float-addition order is part of the
  // bitwise-determinism contract).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->inputs.size()) {
      Node* child = node->inputs[next_child++].get();
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  // Backward steps execute over the reversed order; step s of node P's
  // gradient buffer: born when its first consumer writes it, dead after
  // P's own step reads it. Those lifetimes drive the arena plan.
  std::unordered_map<Node*, std::int32_t> step_of;
  step_of.reserve(order.size());
  {
    std::int32_t s = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it, ++s) {
      step_of[*it] = s;
    }
  }
  Node* const root_raw = root.get();
  std::unordered_map<Node*, std::int32_t> born;
  {
    std::int32_t s = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it, ++s) {
      Node* node = *it;
      if (node->is_leaf) continue;
      for (const auto& in : node->inputs) {
        Node* t = in.get();
        if (!t->requires_grad || t->is_leaf || t == root_raw) continue;
        const auto found = born.find(t);
        if (found == born.end()) {
          born.emplace(t, s);
        } else if (s < found->second) {
          found->second = s;
        }
      }
    }
  }
  std::vector<BufferLifetime> lifetimes;
  std::unordered_map<Node*, std::size_t> lifetime_of;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->is_leaf || node == root_raw) continue;
    const auto b = born.find(node);
    if (b == born.end()) continue;  // no in-graph consumer writes it
    lifetime_of.emplace(node, lifetimes.size());
    lifetimes.push_back(BufferLifetime{shape_numel(node->shape), b->second,
                                       step_of.at(node)});
  }

  const BufferPlan plan = plan_buffers(lifetimes);
  GradArena& arena = GradArena::local();
  const std::uint64_t reused_before = arena.stats().buffers_reused;
  arena.prepare(plan);
  BD_OBS_GAUGE("autograd.arena_peak_bytes", plan.peak_bytes);

  const GradSink sink = [&](const NodePtr& target, const Tensor& g) {
    // backprop_to of the eager tape: ignore non-grad operands, reduce
    // broadcast gradients back to the operand shape, then accumulate.
    if (!target || !target->requires_grad) return;
    Node* t = target.get();
    const bool reduce = g.shape() != t->shape;
    const Tensor gg = reduce ? reduce_to_shape(g, t->shape) : Tensor();
    const Tensor& contribution = reduce ? gg : g;
    if (t->is_leaf || t == root_raw) {
      t->accumulate_grad(contribution);
      return;
    }
    if (!t->grad.defined()) {
      Tensor slot = arena.acquire(lifetime_of.at(t), t->shape);
      std::copy(contribution.data(), contribution.data() + contribution.numel(),
                slot.data());
      t->grad = std::move(slot);
    } else {
      axpy_inplace(t->grad, 1.0f, contribution);
    }
  };

  root->accumulate_grad(Tensor::ones(root->value.shape()));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (!node->is_leaf && node->grad.defined()) {
      execute_backward(*node, sink);
    }
    if (!node->is_leaf && node != root_raw) {
      node->grad = Tensor();  // return the transient slot to the arena
    }
  }

  BD_OBS_COUNT("autograd.backward_passes", 1);
  BD_OBS_COUNT("autograd.arena_buffers_reused",
               arena.stats().buffers_reused - reused_before);
}

}  // namespace bd::ag
