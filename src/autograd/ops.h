// Differentiable operations over bd::ag::Var.
//
// Each op is a graph builder: it validates operands and infers the output
// shape at call time (autograd/shape_infer.h) but defers kernel execution
// to the value()/backward() boundaries (autograd/schedule.h). Elementwise
// binaries broadcast (NumPy rules); their backward reduces gradients back
// to the operand shapes, which is what lets BatchNorm and squeeze-excite
// be expressed compositionally.
#pragma once

#include <vector>

#include "autograd/variable.h"
#include "tensor/conv.h"
#include "tensor/pool.h"

namespace bd::ag {

// Elementwise binary (broadcasting).
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var div(const Var& a, const Var& b);

// Elementwise with scalars.
Var add_scalar(const Var& a, float s);
Var mul_scalar(const Var& a, float s);

// Elementwise unary.
Var neg(const Var& a);
Var exp(const Var& a);
Var log(const Var& a);
Var sqrt(const Var& a);
Var abs(const Var& a);
Var pow_scalar(const Var& a, float p);
/// Clamp with pass-through gradient strictly inside [lo, hi].
Var clamp(const Var& a, float lo, float hi);

// Activations.
Var relu(const Var& a);
Var sigmoid(const Var& a);
Var tanh(const Var& a);
Var hardsigmoid(const Var& a);  // clamp(x+3, 0, 6) / 6
Var hardswish(const Var& a);    // x * hardsigmoid(x)

// Shape ops.
Var reshape(const Var& a, Shape shape);
/// (N,C,H,W) -> (N, C*H*W).
Var flatten2d(const Var& a);

// Reductions.
Var reduce_sum(const Var& a, const std::vector<std::int64_t>& axes,
               bool keepdim);
Var reduce_mean(const Var& a, const std::vector<std::int64_t>& axes,
                bool keepdim);
Var sum_all(const Var& a);   // -> scalar
Var mean_all(const Var& a);  // -> scalar

// Linear algebra.
Var matmul(const Var& a, const Var& b);

// Convolutions; bias may be an undefined Var for bias-free layers.
Var conv2d(const Var& input, const Var& weight, const Var& bias,
           const Conv2dSpec& spec);
Var depthwise_conv2d(const Var& input, const Var& weight, const Var& bias,
                     const Conv2dSpec& spec);

// Pooling.
Var maxpool2d(const Var& input, const Pool2dSpec& spec);
Var avgpool2d(const Var& input, const Pool2dSpec& spec);
Var global_avgpool(const Var& input);

// Classification losses. `logits` is (N, classes).
Var log_softmax(const Var& logits);
Var nll_loss(const Var& log_probs, const std::vector<std::int64_t>& labels);
Var cross_entropy(const Var& logits, const std::vector<std::int64_t>& labels);
/// Mean squared error between same-shape tensors.
Var mse_loss(const Var& a, const Var& b);

}  // namespace bd::ag
