#include "autograd/graph.h"

#include <stdexcept>
#include <string>

#include "tensor/ops.h"

namespace bd::ag {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kLeaf: return "leaf";
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kDiv: return "div";
    case OpKind::kAddScalar: return "add_scalar";
    case OpKind::kMulScalar: return "mul_scalar";
    case OpKind::kExp: return "exp";
    case OpKind::kLog: return "log";
    case OpKind::kSqrt: return "sqrt";
    case OpKind::kAbs: return "abs";
    case OpKind::kPowScalar: return "pow_scalar";
    case OpKind::kClamp: return "clamp";
    case OpKind::kRelu: return "relu";
    case OpKind::kSigmoid: return "sigmoid";
    case OpKind::kTanh: return "tanh";
    case OpKind::kHardsigmoid: return "hardsigmoid";
    case OpKind::kHardswish: return "hardswish";
    case OpKind::kReshape: return "reshape";
    case OpKind::kReduceSum: return "reduce_sum";
    case OpKind::kSumAll: return "sum_all";
    case OpKind::kMatmul: return "matmul";
    case OpKind::kConv2d: return "conv2d";
    case OpKind::kDepthwiseConv2d: return "depthwise_conv2d";
    case OpKind::kMaxPool2d: return "maxpool2d";
    case OpKind::kAvgPool2d: return "avgpool2d";
    case OpKind::kGlobalAvgPool: return "global_avgpool";
    case OpKind::kLogSoftmax: return "log_softmax";
    case OpKind::kNllLoss: return "nll_loss";
  }
  return "unknown";
}

void Node::accumulate_grad(const Tensor& g) {
  if (g.shape() != value.shape()) {
    throw std::logic_error(std::string("accumulate_grad(") +
                           op_kind_name(kind) + "): gradient shape " +
                           shape_string(g.shape()) + " != value shape " +
                           shape_string(value.shape()));
  }
  if (!grad.defined()) {
    grad = g.clone();
  } else {
    axpy_inplace(grad, 1.0f, g);
  }
}

}  // namespace bd::ag
