// Arena memory planning for the autograd backward pass.
//
// The scheduler derives one BufferLifetime per interior (non-leaf, non-root)
// gradient: `born` is the first backward step that writes into it, `dies`
// the step that consumes it (the node's own backward step). plan_buffers()
// assigns each lifetime to a slot such that no two overlapping lifetimes
// share a slot — a pure, deterministic interval-assignment problem, unit
// tested in tests/arena_test.cpp. GradArena then backs the slots with
// retained storage that is REUSED across backward passes: in steady-state
// training the gradient buffers of every intermediate come from the arena
// instead of a fresh malloc per node per step.
//
// Concurrency: the arena is thread_local — each thread doing backward owns
// its own slots, so there is no shared state, no mutex, and no new lock
// rank (see DESIGN.md "Graph IR & memory planning").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace bd::ag {

/// Half-open-in-time interval of one gradient buffer, measured in backward
/// step indices (0 = root's step). Inclusive on both ends: the buffer is
/// written at `born` and last read at `dies`.
struct BufferLifetime {
  std::int64_t numel = 0;
  std::int32_t born = 0;
  std::int32_t dies = 0;
};

/// Deterministic slot assignment for a set of lifetimes.
struct BufferPlan {
  /// slot[i] is the slot assigned to lifetimes[i].
  std::vector<std::int32_t> slot;
  /// Element capacity of each slot (the max numel of its occupants).
  std::vector<std::int64_t> slot_numel;
  /// Arena footprint of the pass: sum of slot capacities, in bytes.
  std::int64_t peak_bytes = 0;
  /// Bytes a malloc-per-buffer scheme would have allocated.
  std::int64_t naive_bytes = 0;
};

/// Assigns lifetimes to slots, never aliasing two lifetimes whose
/// [born, dies] intervals overlap. Deterministic: lifetimes are processed
/// in (born, index) order and each picks the best-fitting free slot
/// (smallest sufficient capacity; ties to the lowest slot id), growing the
/// largest free slot — or opening a new one — when none fits. Throws
/// std::invalid_argument on a lifetime with dies < born or numel < 0.
BufferPlan plan_buffers(const std::vector<BufferLifetime>& lifetimes);

/// Cumulative per-thread arena statistics (monotonic; reset_stats zeroes).
struct ArenaStats {
  std::uint64_t passes = 0;          // backward passes planned
  std::uint64_t buffers_planned = 0; // interior gradients across all passes
  std::uint64_t buffers_reused = 0;  // served from an already-sized slot
  std::uint64_t slot_allocs = 0;     // slot storage allocations/growths
  std::uint64_t fallback_allocs = 0; // slot busy (abandoned graph): fresh buf
  std::int64_t last_peak_bytes = 0;  // footprint of the most recent plan
  std::int64_t max_peak_bytes = 0;   // largest footprint seen
  std::int64_t last_naive_bytes = 0; // malloc-per-buffer bytes of that plan
};

/// Thread-local gradient arena: retained slot storage reused across
/// backward passes.
class GradArena {
 public:
  /// The calling thread's arena.
  static GradArena& local();

  /// Sizes the slots for one backward pass and updates statistics. The
  /// previous pass's transient gradients must already be released (the
  /// scheduler clears each interior grad right after its backward step).
  void prepare(const BufferPlan& plan);

  /// Tensor viewing the storage of `plan.slot[lifetime_index]` as `shape`.
  /// If the slot is unexpectedly still referenced (a backward pass was
  /// abandoned mid-flight), a fresh buffer is returned instead so planned
  /// reuse can never alias a live gradient; this is counted in
  /// `stats().fallback_allocs`.
  Tensor acquire(std::size_t lifetime_index, const Shape& shape);

  const ArenaStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ArenaStats{}; }

  /// Drops all retained slot storage (stats are kept).
  void release_storage();

 private:
  std::vector<std::shared_ptr<std::vector<float>>> slots_;
  BufferPlan plan_;
  ArenaStats stats_;
};

}  // namespace bd::ag
