#include "autograd/arena.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace bd::ag {

BufferPlan plan_buffers(const std::vector<BufferLifetime>& lifetimes) {
  for (const auto& lt : lifetimes) {
    if (lt.numel < 0) {
      throw std::invalid_argument("plan_buffers: negative buffer size");
    }
    if (lt.dies < lt.born) {
      throw std::invalid_argument("plan_buffers: lifetime dies at step " +
                                  std::to_string(lt.dies) +
                                  " before it is born at step " +
                                  std::to_string(lt.born));
    }
  }

  BufferPlan plan;
  plan.slot.assign(lifetimes.size(), -1);
  std::vector<std::int32_t> busy_until;  // per slot: dies of its occupant

  std::vector<std::size_t> order(lifetimes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return lifetimes[a].born < lifetimes[b].born;
                   });

  for (const std::size_t i : order) {
    const BufferLifetime& lt = lifetimes[i];
    plan.naive_bytes +=
        lt.numel * static_cast<std::int64_t>(sizeof(float));

    // Best fit among free slots: smallest sufficient capacity; remember the
    // largest free slot as the grow candidate when none is big enough.
    std::int32_t best = -1;
    std::int32_t largest_free = -1;
    for (std::size_t s = 0; s < busy_until.size(); ++s) {
      if (busy_until[s] >= lt.born) continue;  // occupied: would alias
      const std::int64_t cap = plan.slot_numel[s];
      if (cap >= lt.numel) {
        if (best < 0 || cap < plan.slot_numel[static_cast<std::size_t>(best)]) {
          best = static_cast<std::int32_t>(s);
        }
      }
      if (largest_free < 0 ||
          cap > plan.slot_numel[static_cast<std::size_t>(largest_free)]) {
        largest_free = static_cast<std::int32_t>(s);
      }
    }
    if (best < 0 && largest_free >= 0) {
      // Grow the largest free slot rather than opening a new one.
      best = largest_free;
      plan.slot_numel[static_cast<std::size_t>(best)] = lt.numel;
    }
    if (best < 0) {
      best = static_cast<std::int32_t>(plan.slot_numel.size());
      plan.slot_numel.push_back(lt.numel);
      busy_until.push_back(lt.dies);
    } else {
      busy_until[static_cast<std::size_t>(best)] = lt.dies;
    }
    plan.slot[i] = best;
  }

  for (const std::int64_t cap : plan.slot_numel) {
    plan.peak_bytes += cap * static_cast<std::int64_t>(sizeof(float));
  }
  return plan;
}

GradArena& GradArena::local() {
  thread_local GradArena arena;
  return arena;
}

void GradArena::prepare(const BufferPlan& plan) {
  if (slots_.size() < plan.slot_numel.size()) {
    slots_.resize(plan.slot_numel.size());
  }
  for (std::size_t s = 0; s < plan.slot_numel.size(); ++s) {
    const auto need = static_cast<std::size_t>(plan.slot_numel[s]);
    if (!slots_[s]) {
      slots_[s] = std::make_shared<std::vector<float>>(need);
      ++stats_.slot_allocs;
    } else if (slots_[s]->size() < need) {
      // Grow in place when the slot is unreferenced, else replace; either
      // way the old capacity is gone, so count it as an allocation.
      if (slots_[s].use_count() == 1) {
        slots_[s]->resize(need);
      } else {
        slots_[s] = std::make_shared<std::vector<float>>(need);
      }
      ++stats_.slot_allocs;
    }
  }
  plan_ = plan;
  ++stats_.passes;
  stats_.buffers_planned += plan.slot.size();
  stats_.last_peak_bytes = plan.peak_bytes;
  stats_.max_peak_bytes = std::max(stats_.max_peak_bytes, plan.peak_bytes);
  stats_.last_naive_bytes = plan.naive_bytes;
}

Tensor GradArena::acquire(std::size_t lifetime_index, const Shape& shape) {
  if (lifetime_index >= plan_.slot.size()) {
    throw std::logic_error("GradArena::acquire: lifetime index " +
                           std::to_string(lifetime_index) +
                           " outside the prepared plan");
  }
  const auto s = static_cast<std::size_t>(plan_.slot[lifetime_index]);
  auto& storage = slots_[s];
  if (storage.use_count() != 1 ||
      static_cast<std::int64_t>(storage->size()) < shape_numel(shape)) {
    // A previous backward pass was abandoned with this slot still held, or
    // the plan under-sized it. Never alias: hand out a fresh buffer.
    ++stats_.fallback_allocs;
    return Tensor(shape);
  }
  ++stats_.buffers_reused;
  return Tensor::wrap_storage(storage, shape);
}

void GradArena::release_storage() {
  slots_.clear();
  plan_ = BufferPlan{};
}

}  // namespace bd::ag
