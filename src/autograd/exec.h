// Per-op execution for the graph IR.
//
// execute_forward computes a node's value from its (already materialized)
// inputs; execute_backward propagates the node's gradient to its inputs
// through a GradSink. Both call exactly the kernels of src/tensor that the
// old eager tape called, in the same order per op — the bitwise-identity
// contract the determinism suite pins (see graph.h).
#pragma once

#include <functional>

#include "autograd/graph.h"

namespace bd::ag {

/// Computes n.value (and auxiliary state such as the maxpool argmax) from
/// n.inputs, whose values must be defined. Leaves are a no-op.
void execute_forward(Node& n);

/// Receives one gradient contribution for a target node. The scheduler's
/// sink reduces broadcast gradients back to the target shape and routes
/// the result to persistent (leaf/root) or arena-backed (interior) storage.
using GradSink = std::function<void(const NodePtr&, const Tensor&)>;

/// Propagates n.grad into n's inputs, invoking `sink` once per gradient
/// contribution in the operand order of the original op.
void execute_backward(const Node& n, const GradSink& sink);

}  // namespace bd::ag
