#include "autograd/variable.h"

#include <stdexcept>
#include <unordered_set>

#include "tensor/ops.h"

namespace bd::ag {

void Node::accumulate_grad(const Tensor& g) {
  if (g.shape() != value.shape()) {
    throw std::logic_error(std::string("accumulate_grad(") + op_name +
                           "): gradient shape " + shape_string(g.shape()) +
                           " != value shape " + shape_string(value.shape()));
  }
  if (!grad.defined()) {
    grad = g.clone();
  } else {
    axpy_inplace(grad, 1.0f, g);
  }
}

namespace {
thread_local bool g_grad_enabled = true;
}

bool grad_recording_enabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

Var::Var(Tensor value, bool requires_grad) : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->is_leaf = true;
}

Var Var::op_result(Tensor value, std::vector<Var> parents,
                   std::function<void(Node&)> backward_fn,
                   const char* op_name) {
  Var out;
  out.node_ = std::make_shared<Node>();
  out.node_->value = std::move(value);
  out.node_->op_name = op_name;
  out.node_->is_leaf = true;

  if (!grad_recording_enabled()) return out;

  bool any_requires = false;
  for (const auto& p : parents) {
    if (p.defined() && p.requires_grad()) {
      any_requires = true;
      break;
    }
  }
  if (!any_requires) return out;

  out.node_->requires_grad = true;
  out.node_->is_leaf = false;
  out.node_->backward_fn = std::move(backward_fn);
  for (auto& p : parents) {
    if (p.defined()) out.node_->parents.push_back(p.node());
  }
  return out;
}

const Tensor& Var::value() const {
  if (!node_) throw std::logic_error("Var::value on undefined Var");
  return node_->value;
}

Tensor& Var::mutable_value() {
  if (!node_) throw std::logic_error("Var::mutable_value on undefined Var");
  return node_->value;
}

const Tensor& Var::grad() const {
  if (!node_ || !node_->grad.defined()) {
    throw std::logic_error("Var::grad: no gradient accumulated");
  }
  return node_->grad;
}

bool Var::has_grad() const { return node_ && node_->grad.defined(); }

bool Var::requires_grad() const { return node_ && node_->requires_grad; }

bool Var::is_leaf() const { return node_ && node_->is_leaf; }

void Var::zero_grad() {
  if (node_) node_->grad = Tensor();
}

void Var::backward() {
  if (!node_) throw std::logic_error("Var::backward on undefined Var");
  if (node_->value.numel() != 1) {
    throw std::logic_error("Var::backward requires a scalar output, got " +
                           shape_string(node_->value.shape()));
  }

  // Topological order via iterative DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child++].get();
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  node_->accumulate_grad(Tensor::ones(node_->value.shape()));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->grad.defined()) {
      node->backward_fn(*node);
    }
  }
}

Var Var::detach() const {
  if (!node_) return Var();
  return Var(node_->value, /*requires_grad=*/false);
}

}  // namespace bd::ag
