#include "autograd/variable.h"

#include <stdexcept>

#include "autograd/schedule.h"

namespace bd::ag {

namespace {
thread_local bool g_grad_enabled = true;
}

bool grad_recording_enabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

Var::Var(Tensor value, bool requires_grad) : node_(std::make_shared<Node>()) {
  node_->shape = value.shape();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->is_leaf = true;
}

Var Var::from_node(NodePtr node) {
  Var out;
  out.node_ = std::move(node);
  return out;
}

const Tensor& Var::value() const {
  if (!node_) throw std::logic_error("Var::value on undefined Var");
  if (!node_->value.defined()) materialize(node_);
  return node_->value;
}

Tensor& Var::mutable_value() {
  if (!node_) throw std::logic_error("Var::mutable_value on undefined Var");
  if (!node_->value.defined()) materialize(node_);
  return node_->value;
}

const Tensor& Var::grad() const {
  if (!node_ || !node_->grad.defined()) {
    throw std::logic_error("Var::grad: no gradient accumulated");
  }
  return node_->grad;
}

bool Var::has_grad() const { return node_ && node_->grad.defined(); }

bool Var::requires_grad() const { return node_ && node_->requires_grad; }

bool Var::is_leaf() const { return node_ && node_->is_leaf; }

const Shape& Var::shape() const {
  if (!node_) throw std::logic_error("Var::shape on undefined Var");
  return node_->shape;
}

void Var::zero_grad() {
  if (node_) node_->grad = Tensor();
}

void Var::backward() {
  if (!node_) throw std::logic_error("Var::backward on undefined Var");
  run_backward(node_);
}

Var Var::detach() const {
  if (!node_) return Var();
  return Var(value(), /*requires_grad=*/false);
}

}  // namespace bd::ag
