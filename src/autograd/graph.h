// The autograd graph IR.
//
// ops.h builders create Nodes: an OpKind, the input edges, the op's
// attributes, and a build-time inferred shape (shape_infer.h). No kernel
// runs at build time — execution is deferred to the Var::value() /
// Var::backward() boundaries, where the deterministic scheduler
// (schedule.h) materializes values in graph post-order and runs the
// backward pass over an arena memory plan (arena.h). exec.h holds the
// per-kind forward/backward kernels; they call exactly the same
// src/tensor routines, in the same per-op order, as the old eager tape,
// which is what keeps the refactor bitwise-invisible
// (Determinism.GraphIRInvariance pins this against a pre-refactor golden
// hash).
//
// Gradient lifetimes: leaf gradients (parameters) live on the node and
// accumulate across backward() calls, exactly as before. INTERIOR
// gradients are now transient — they live in planned arena slots and are
// released as soon as the node's backward step has consumed them, so
// reading .grad() of a non-leaf after backward() throws. All production
// consumers (optimizers, Grad-Prune filter scoring, ANP masks, trigger
// inversion) read only leaf gradients.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/conv.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace bd::ag {

enum class OpKind : std::uint8_t {
  kLeaf,
  // Elementwise binary (broadcasting).
  kAdd,
  kSub,
  kMul,
  kDiv,
  // Elementwise with scalar.
  kAddScalar,
  kMulScalar,
  // Elementwise unary.
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kPowScalar,
  kClamp,
  kRelu,
  kSigmoid,
  kTanh,
  kHardsigmoid,
  kHardswish,
  // Shape.
  kReshape,
  // Reductions.
  kReduceSum,
  kSumAll,
  // Linear algebra.
  kMatmul,
  // Convolutions.
  kConv2d,
  kDepthwiseConv2d,
  // Pooling.
  kMaxPool2d,
  kAvgPool2d,
  kGlobalAvgPool,
  // Losses.
  kLogSoftmax,
  kNllLoss,
};

/// Stable display name ("add", "conv2d", ...) for errors and traces.
const char* op_kind_name(OpKind kind);

struct Node;
using NodePtr = std::shared_ptr<Node>;

struct Node {
  OpKind kind = OpKind::kLeaf;
  /// Mirrors the eager tape: false for leaves without requires_grad, for
  /// every node built under NoGradGuard, and for ops none of whose inputs
  /// require grad.
  bool requires_grad = false;
  /// True for genuine leaves AND for op nodes recorded without gradient
  /// (NoGradGuard / no grad-requiring input) — the backward pass treats
  /// both as terminals, exactly as the old tape did.
  bool is_leaf = true;
  /// Set when an eval-mode materialization recycled this node's value
  /// after proving no live handle could ever read it again; guards the
  /// error path in Var::value().
  bool value_released = false;

  /// Inferred at build time; always valid, even before materialization.
  Shape shape;
  std::vector<NodePtr> inputs;

  // --- attributes, interpreted per kind ---
  float scalar = 0.0f;  // kAddScalar / kMulScalar / kPowScalar
  float lo = 0.0f;      // kClamp
  float hi = 0.0f;      // kClamp
  Conv2dSpec conv;      // kConv2d / kDepthwiseConv2d
  Pool2dSpec pool;      // kMaxPool2d / kAvgPool2d
  std::vector<std::int64_t> axes;  // kReduceSum (normalized, original order)
  bool keepdim = false;            // kReduceSum
  Shape kept_shape;                // kReduceSum: keepdim view of the output
  std::shared_ptr<const std::vector<std::int64_t>> labels;  // kNllLoss

  // --- execution state ---
  Tensor value;  // defined once materialized (immediately, for leaves)
  Tensor grad;   // persistent on leaves and backward roots; transient else
  std::shared_ptr<std::vector<std::int64_t>> argmax;  // kMaxPool2d aux

  /// Adds g to this node's persistent grad (allocating on first use);
  /// throws std::logic_error on shape mismatch. Used for leaves and the
  /// backward root — interior accumulation goes through the arena plan.
  void accumulate_grad(const Tensor& g);
};

}  // namespace bd::ag
