// Deterministic topological scheduling for the graph IR.
//
// materialize() runs forward execution for every not-yet-computed node
// below a root, in graph-structural post-order (no clocks, no addresses,
// no thread interleavings — the schedule is a pure function of the graph,
// which is what keeps `bd table` output byte-stable). In gradient-free
// passes it additionally recycles intermediate values the moment their
// last scheduled consumer has run, provided the node's reference count
// proves no Var handle outside the schedule could ever read them.
//
// run_backward() replays the exact reverse topological order of the old
// eager tape (iterative DFS over grad-requiring edges), plans arena slots
// for every interior gradient from the resulting lifetimes, and executes
// the per-op backward kernels. Leaf and root gradients accumulate
// persistently across calls, exactly as before; interior gradients are
// transient and live in reused arena storage (see arena.h).
#pragma once

#include "autograd/graph.h"

namespace bd::ag {

/// Ensures root->value is defined, executing any unmaterialized
/// subgraph in deterministic post-order. No-op when already computed.
void materialize(const NodePtr& root);

/// Reverse-mode accumulation from a scalar root: materializes the forward
/// graph, then runs the backward pass over an arena memory plan. Throws
/// std::logic_error when the root is not scalar.
void run_backward(const NodePtr& root);

}  // namespace bd::ag
