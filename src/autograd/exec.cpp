#include "autograd/exec.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "tensor/conv.h"
#include "tensor/ops.h"
#include "tensor/pool.h"

namespace bd::ag {

namespace {

const Tensor& in_value(const Node& n, std::size_t i) {
  return n.inputs[i]->value;
}

}  // namespace

void execute_forward(Node& n) {
  switch (n.kind) {
    case OpKind::kLeaf:
      return;
    case OpKind::kAdd:
      n.value = bd::add(in_value(n, 0), in_value(n, 1));
      return;
    case OpKind::kSub:
      n.value = bd::sub(in_value(n, 0), in_value(n, 1));
      return;
    case OpKind::kMul:
      n.value = bd::mul(in_value(n, 0), in_value(n, 1));
      return;
    case OpKind::kDiv:
      n.value = bd::div(in_value(n, 0), in_value(n, 1));
      return;
    case OpKind::kAddScalar:
      n.value = bd::add_scalar(in_value(n, 0), n.scalar);
      return;
    case OpKind::kMulScalar:
      n.value = bd::mul_scalar(in_value(n, 0), n.scalar);
      return;
    case OpKind::kExp:
      n.value = bd::exp(in_value(n, 0));
      return;
    case OpKind::kLog:
      n.value = bd::log(in_value(n, 0));
      return;
    case OpKind::kSqrt:
      n.value = bd::sqrt(in_value(n, 0));
      return;
    case OpKind::kAbs:
      n.value = bd::abs(in_value(n, 0));
      return;
    case OpKind::kPowScalar:
      n.value = bd::pow_scalar(in_value(n, 0), n.scalar);
      return;
    case OpKind::kClamp:
      n.value = bd::clamp(in_value(n, 0), n.lo, n.hi);
      return;
    case OpKind::kRelu:
      n.value = bd::relu(in_value(n, 0));
      return;
    case OpKind::kSigmoid:
      n.value = bd::sigmoid(in_value(n, 0));
      return;
    case OpKind::kTanh:
      n.value = bd::tanh(in_value(n, 0));
      return;
    case OpKind::kHardsigmoid:
      n.value = bd::unary(in_value(n, 0), [](float x) {
        return std::min(1.0f, std::max(0.0f, (x + 3.0f) / 6.0f));
      });
      return;
    case OpKind::kHardswish:
      n.value = bd::unary(in_value(n, 0), [](float x) {
        return x * std::min(1.0f, std::max(0.0f, (x + 3.0f) / 6.0f));
      });
      return;
    case OpKind::kReshape:
      n.value = in_value(n, 0).reshape(n.shape);
      return;
    case OpKind::kReduceSum:
      n.value = bd::reduce_sum(in_value(n, 0), n.axes, n.keepdim);
      return;
    case OpKind::kSumAll:
      n.value = Tensor::scalar(bd::sum_all(in_value(n, 0)));
      return;
    case OpKind::kMatmul:
      n.value = bd::matmul(in_value(n, 0), in_value(n, 1));
      return;
    case OpKind::kConv2d:
      n.value = conv2d_forward(in_value(n, 0), in_value(n, 1),
                               n.inputs.size() == 3 ? in_value(n, 2)
                                                    : Tensor(),
                               n.conv);
      return;
    case OpKind::kDepthwiseConv2d:
      n.value = depthwise_conv2d_forward(in_value(n, 0), in_value(n, 1),
                                         n.inputs.size() == 3
                                             ? in_value(n, 2)
                                             : Tensor(),
                                         n.conv);
      return;
    case OpKind::kMaxPool2d: {
      MaxPoolResult res = maxpool2d_forward(in_value(n, 0), n.pool);
      n.argmax = std::make_shared<std::vector<std::int64_t>>(
          std::move(res.argmax));
      n.value = std::move(res.output);
      return;
    }
    case OpKind::kAvgPool2d:
      n.value = avgpool2d_forward(in_value(n, 0), n.pool);
      return;
    case OpKind::kGlobalAvgPool:
      n.value = global_avgpool_forward(in_value(n, 0));
      return;
    case OpKind::kLogSoftmax:
      n.value = log_softmax_rows(in_value(n, 0));
      return;
    case OpKind::kNllLoss: {
      const Tensor& lp = in_value(n, 0);
      const std::int64_t rows = lp.size(0);
      double loss = 0.0;
      for (std::int64_t i = 0; i < rows; ++i) {
        loss -= lp.at2(i, (*n.labels)[static_cast<std::size_t>(i)]);
      }
      loss /= static_cast<double>(rows);
      n.value = Tensor::scalar(static_cast<float>(loss));
      return;
    }
  }
  throw std::logic_error("execute_forward: unhandled op kind");
}

void execute_backward(const Node& n, const GradSink& sink) {
  switch (n.kind) {
    case OpKind::kLeaf:
      return;
    case OpKind::kAdd:
      sink(n.inputs[0], n.grad);
      sink(n.inputs[1], n.grad);
      return;
    case OpKind::kSub:
      sink(n.inputs[0], n.grad);
      sink(n.inputs[1], bd::neg(n.grad));
      return;
    case OpKind::kMul:
      sink(n.inputs[0], bd::mul(n.grad, in_value(n, 1)));
      sink(n.inputs[1], bd::mul(n.grad, in_value(n, 0)));
      return;
    case OpKind::kDiv: {
      const Tensor& av = in_value(n, 0);
      const Tensor& bv = in_value(n, 1);
      sink(n.inputs[0], bd::div(n.grad, bv));
      // d/db (a/b) = -a / b^2
      sink(n.inputs[1],
           bd::neg(bd::div(bd::mul(n.grad, av), bd::mul(bv, bv))));
      return;
    }
    case OpKind::kAddScalar:
      sink(n.inputs[0], n.grad);
      return;
    case OpKind::kMulScalar:
      sink(n.inputs[0], bd::mul_scalar(n.grad, n.scalar));
      return;
    case OpKind::kExp:
      sink(n.inputs[0], bd::mul(n.grad, n.value));
      return;
    case OpKind::kLog:
      sink(n.inputs[0], bd::div(n.grad, in_value(n, 0)));
      return;
    case OpKind::kSqrt:
      sink(n.inputs[0], bd::div(n.grad, bd::mul_scalar(n.value, 2.0f)));
      return;
    case OpKind::kAbs:
      sink(n.inputs[0], bd::mul(n.grad, bd::sign(in_value(n, 0))));
      return;
    case OpKind::kPowScalar:
      sink(n.inputs[0],
           bd::mul(n.grad,
                   bd::mul_scalar(bd::pow_scalar(in_value(n, 0),
                                                 n.scalar - 1.0f),
                                  n.scalar)));
      return;
    case OpKind::kClamp: {
      const float lo = n.lo, hi = n.hi;
      const Tensor mask = bd::unary(in_value(n, 0), [lo, hi](float x) {
        return (x > lo && x < hi) ? 1.0f : 0.0f;
      });
      sink(n.inputs[0], bd::mul(n.grad, mask));
      return;
    }
    case OpKind::kRelu: {
      const Tensor mask = bd::unary(
          in_value(n, 0), [](float x) { return x > 0 ? 1.0f : 0.0f; });
      sink(n.inputs[0], bd::mul(n.grad, mask));
      return;
    }
    case OpKind::kSigmoid: {
      const Tensor d =
          bd::unary(n.value, [](float s) { return s * (1.0f - s); });
      sink(n.inputs[0], bd::mul(n.grad, d));
      return;
    }
    case OpKind::kTanh: {
      const Tensor d =
          bd::unary(n.value, [](float t) { return 1.0f - t * t; });
      sink(n.inputs[0], bd::mul(n.grad, d));
      return;
    }
    case OpKind::kHardsigmoid: {
      const Tensor d = bd::unary(in_value(n, 0), [](float x) {
        return (x > -3.0f && x < 3.0f) ? (1.0f / 6.0f) : 0.0f;
      });
      sink(n.inputs[0], bd::mul(n.grad, d));
      return;
    }
    case OpKind::kHardswish: {
      const Tensor d = bd::unary(in_value(n, 0), [](float x) {
        if (x <= -3.0f) return 0.0f;
        if (x >= 3.0f) return 1.0f;
        return (2.0f * x + 3.0f) / 6.0f;
      });
      sink(n.inputs[0], bd::mul(n.grad, d));
      return;
    }
    case OpKind::kReshape:
      sink(n.inputs[0], n.grad.reshape(n.inputs[0]->shape));
      return;
    case OpKind::kReduceSum: {
      // Broadcast the (keepdim-shaped) gradient back over reduced dims.
      // add-with-zeros rather than a broadcast copy: (-0)+(+0) == +0, so a
      // copy would NOT be bitwise-identical to the historical formulation.
      const Tensor g = n.grad.reshape(n.kept_shape);
      sink(n.inputs[0], bd::add(g, Tensor::zeros(n.inputs[0]->shape)));
      return;
    }
    case OpKind::kSumAll:
      sink(n.inputs[0], Tensor::full(n.inputs[0]->shape, n.grad[0]));
      return;
    case OpKind::kMatmul:
      sink(n.inputs[0], bd::matmul(n.grad, transpose2d(in_value(n, 1))));
      sink(n.inputs[1], bd::matmul(transpose2d(in_value(n, 0)), n.grad));
      return;
    case OpKind::kConv2d:
    case OpKind::kDepthwiseConv2d: {
      const bool has_bias = n.inputs.size() == 3;
      const Conv2dGrads grads =
          n.kind == OpKind::kConv2d
              ? conv2d_backward(in_value(n, 0), in_value(n, 1), has_bias,
                                n.grad, n.conv)
              : depthwise_conv2d_backward(in_value(n, 0), in_value(n, 1),
                                          has_bias, n.grad, n.conv);
      sink(n.inputs[0], grads.grad_input);
      sink(n.inputs[1], grads.grad_weight);
      if (has_bias) sink(n.inputs[2], grads.grad_bias);
      return;
    }
    case OpKind::kMaxPool2d:
      sink(n.inputs[0],
           maxpool2d_backward(n.inputs[0]->shape, *n.argmax, n.grad));
      return;
    case OpKind::kAvgPool2d:
      sink(n.inputs[0],
           avgpool2d_backward(n.inputs[0]->shape, n.grad, n.pool));
      return;
    case OpKind::kGlobalAvgPool:
      sink(n.inputs[0], global_avgpool_backward(n.inputs[0]->shape, n.grad));
      return;
    case OpKind::kLogSoftmax: {
      // dL/dx = g - softmax(x) * sum_j(g_j) per row.
      const Tensor& out = n.value;
      const std::int64_t rows = out.size(0), cols = out.size(1);
      Tensor gin(out.shape());
      for (std::int64_t i = 0; i < rows; ++i) {
        const float* g = n.grad.data() + i * cols;
        const float* lp = out.data() + i * cols;
        float* o = gin.data() + i * cols;
        double gsum = 0.0;
        for (std::int64_t j = 0; j < cols; ++j) gsum += g[j];
        for (std::int64_t j = 0; j < cols; ++j) {
          o[j] = g[j] - std::exp(lp[j]) * static_cast<float>(gsum);
        }
      }
      sink(n.inputs[0], gin);
      return;
    }
    case OpKind::kNllLoss: {
      const Shape& lp_shape = n.inputs[0]->shape;
      const float g = n.grad[0] / static_cast<float>(lp_shape[0]);
      Tensor gin(lp_shape);
      for (std::int64_t i = 0; i < lp_shape[0]; ++i) {
        gin.at2(i, (*n.labels)[static_cast<std::size_t>(i)]) = -g;
      }
      sink(n.inputs[0], gin);
      return;
    }
  }
  throw std::logic_error("execute_backward: unhandled op kind");
}

}  // namespace bd::ag
