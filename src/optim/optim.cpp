#include "optim/optim.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace bd::optim {

Optimizer::Optimizer(std::vector<ag::Var*> params)
    : params_(std::move(params)) {
  for (const auto* p : params_) {
    if (p == nullptr || !p->defined()) {
      throw std::invalid_argument("Optimizer: null or undefined parameter");
    }
  }
}

void Optimizer::zero_grad() {
  for (auto* p : params_) p->zero_grad();
}

float Optimizer::grad_norm() const {
  double total = 0.0;
  for (const auto* p : params_) {
    if (!p->has_grad()) continue;
    const float n = l2_norm(p->grad());
    total += static_cast<double>(n) * n;
  }
  return static_cast<float>(std::sqrt(total));
}

void Optimizer::clip_grad_norm(float max_norm) {
  const float norm = grad_norm();
  if (norm <= max_norm || norm == 0.0f) return;
  const float scale = max_norm / norm;
  for (auto* p : params_) {
    if (!p->has_grad()) continue;
    // Gradients are owned by the node; scale in place.
    Tensor& g = const_cast<Tensor&>(p->grad());
    float* pg = g.data();
    for (std::int64_t i = 0; i < g.numel(); ++i) pg[i] *= scale;
  }
}

// ---------------------------------------------------------------------------
// SGD
// ---------------------------------------------------------------------------

Sgd::Sgd(std::vector<ag::Var*> params, SgdOptions options)
    : Optimizer(std::move(params)),
      options_(options),
      velocity_(params_.size()) {}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    ag::Var* p = params_[i];
    if (!p->has_grad()) continue;
    Tensor& w = p->mutable_value();
    const Tensor& g = p->grad();

    Tensor update = g.clone();
    if (options_.weight_decay != 0.0f) {
      axpy_inplace(update, options_.weight_decay, w);
    }
    if (options_.momentum != 0.0f) {
      if (!velocity_[i].defined()) velocity_[i] = Tensor(w.shape());
      Tensor& v = velocity_[i];
      float* pv = v.data();
      const float* pu = update.data();
      for (std::int64_t j = 0; j < v.numel(); ++j) {
        pv[j] = options_.momentum * pv[j] + pu[j];
      }
      axpy_inplace(w, -options_.lr, v);
    } else {
      axpy_inplace(w, -options_.lr, update);
    }
  }
}

// ---------------------------------------------------------------------------
// Adam
// ---------------------------------------------------------------------------

Adam::Adam(std::vector<ag::Var*> params, AdamOptions options)
    : Optimizer(std::move(params)),
      options_(options),
      m_(params_.size()),
      v_(params_.size()) {}

void Adam::step() {
  ++t_;
  const float bc1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    ag::Var* p = params_[i];
    if (!p->has_grad()) continue;
    Tensor& w = p->mutable_value();
    const Tensor& g = p->grad();

    if (!m_[i].defined()) {
      m_[i] = Tensor(w.shape());
      v_[i] = Tensor(w.shape());
    }
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    const float* pg = g.data();
    float* pw = w.data();
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      float grad = pg[j];
      if (options_.weight_decay != 0.0f) grad += options_.weight_decay * pw[j];
      pm[j] = options_.beta1 * pm[j] + (1.0f - options_.beta1) * grad;
      pv[j] = options_.beta2 * pv[j] + (1.0f - options_.beta2) * grad * grad;
      const float mhat = pm[j] / bc1;
      const float vhat = pv[j] / bc2;
      pw[j] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
    }
  }
}

// ---------------------------------------------------------------------------
// SAM
// ---------------------------------------------------------------------------

Sam::Sam(std::unique_ptr<Optimizer> base, float rho)
    : base_(std::move(base)), rho_(rho) {
  if (!base_) throw std::invalid_argument("Sam: null base optimizer");
  if (rho_ <= 0.0f) throw std::invalid_argument("Sam: rho must be positive");
}

void Sam::first_step() {
  if (perturbed_) throw std::logic_error("Sam::first_step called twice");
  const auto& params = base_->params();
  const float norm = base_->grad_norm();
  perturbation_.assign(params.size(), Tensor());
  if (norm > 0.0f) {
    const float scale = rho_ / norm;
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!params[i]->has_grad()) continue;
      Tensor e = params[i]->grad().clone();
      float* pe = e.data();
      for (std::int64_t j = 0; j < e.numel(); ++j) pe[j] *= scale;
      axpy_inplace(params[i]->mutable_value(), 1.0f, e);
      perturbation_[i] = std::move(e);
    }
  }
  perturbed_ = true;
}

void Sam::second_step() {
  if (!perturbed_) throw std::logic_error("Sam::second_step before first_step");
  const auto& params = base_->params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (perturbation_[i].defined()) {
      axpy_inplace(params[i]->mutable_value(), -1.0f, perturbation_[i]);
    }
  }
  perturbation_.clear();
  perturbed_ = false;
  base_->step();
}

}  // namespace bd::optim
