// Optimizers: SGD with momentum / weight decay, Adam, and Sharpness-Aware
// Minimization (SAM). SAM is required by the FT-SAM baseline defense
// (Zhu et al. 2023): each update first ascends to the worst-case nearby
// weights (first_step), re-evaluates the loss there, then descends with the
// base rule from the original point (second_step).
#pragma once

#include <memory>
#include <vector>

#include "autograd/variable.h"

namespace bd::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Var*> params);
  virtual ~Optimizer() = default;

  /// Applies one update using each parameter's accumulated gradient.
  /// Parameters with no gradient are skipped.
  virtual void step() = 0;

  void zero_grad();
  const std::vector<ag::Var*>& params() const { return params_; }

  /// Global L2 norm over all parameter gradients (0 if none).
  float grad_norm() const;

  /// Scales gradients so the global norm is at most max_norm.
  void clip_grad_norm(float max_norm);

 protected:
  std::vector<ag::Var*> params_;
};

struct SgdOptions {
  float lr = 0.01f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Var*> params, SgdOptions options);
  void step() override;

  SgdOptions& options() { return options_; }

 private:
  SgdOptions options_;
  std::vector<Tensor> velocity_;  // lazily allocated per param
};

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Var*> params, AdamOptions options);
  void step() override;

  AdamOptions& options() { return options_; }

 private:
  AdamOptions options_;
  std::vector<Tensor> m_, v_;
  std::int64_t t_ = 0;
};

/// Sharpness-aware minimization wrapper (Foret et al., as used by FT-SAM).
///
/// Usage per batch:
///   loss1.backward(); sam.first_step();     // move to w + e(w)
///   zero_grad(); loss2.backward(); sam.second_step();  // restore, update
class Sam {
 public:
  Sam(std::unique_ptr<Optimizer> base, float rho);

  /// Perturbs parameters by rho * g / ||g|| and remembers the perturbation.
  void first_step();

  /// Restores the original parameters and applies the base optimizer step
  /// with the gradients computed at the perturbed point.
  void second_step();

  Optimizer& base() { return *base_; }
  void zero_grad() { base_->zero_grad(); }

 private:
  std::unique_ptr<Optimizer> base_;
  float rho_;
  std::vector<Tensor> perturbation_;
  bool perturbed_ = false;
};

}  // namespace bd::optim
