// Ablation A: pruning versus gradient descent.
//
// Sec. IV-A argues that the parameters with large unlearning-loss gradient
// are better PRUNED than adjusted by gradient descent on limited data.
// This bench compares, on the same backdoored models:
//   descend-only : fine-tune on clean + relabelled backdoor data (the
//                  gradient-descent alternative; no pruning)
//   prune-only   : gradient-based pruning without the recovery fine-tune
//   prune+ft     : the full proposed approach
#include <cstdio>

#include "core/grad_prune.h"
#include "eval/runner.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace bd;
  const eval::ExperimentScale scale = eval::default_scale("cifar");
  const std::uint64_t seed = base_seed();

  std::printf("== Ablation A: prune vs gradient-descend (unlearning) ==\n");
  std::printf("mode=%s trials=%d\n\n", full_mode() ? "full" : "quick",
              scale.trials);

  struct Variant {
    const char* label;
    bool prune;
    bool finetune;
  };
  const Variant variants[] = {
      {"descend-only", false, true},
      {"prune-only", true, false},
      {"prune+ft (ours)", true, true},
  };

  TextTable table({"Attack", "SPC", "Variant", "ACC", "ASR", "RA"});
  for (const char* attack : {"badnet", "blended"}) {
    Rng seeder(seed ^ std::hash<std::string>{}(attack));
    const auto bd_model = eval::prepare_backdoored_model(
        "cifar", "preactresnet", attack, scale, seeder.next_u64());

    char buf[3][32];
    std::snprintf(buf[0], 32, "%.2f", bd_model.baseline.acc);
    std::snprintf(buf[1], 32, "%.2f", bd_model.baseline.asr);
    std::snprintf(buf[2], 32, "%.2f", bd_model.baseline.ra);
    table.add_row({attack, "-", "Baseline", buf[0], buf[1], buf[2]});

    for (const auto spc : scale.spc_settings) {
      for (const auto& variant : variants) {
        std::vector<double> acc, asr, ra;
        Rng trial_seeder(seeder.next_u64());
        for (int t = 0; t < scale.trials; ++t) {
          core::GradPruneConfig cfg;
          cfg.prune = variant.prune;
          cfg.finetune = variant.finetune;
          cfg.max_prune_rounds = scale.prune_max_rounds;
          cfg.finetune_max_epochs = scale.defense_max_epochs;
          core::GradPruneDefense defense(cfg);
          const auto trial = eval::run_custom_defense_trial(
              bd_model, defense, spc, trial_seeder.next_u64());
          acc.push_back(trial.metrics.acc);
          asr.push_back(trial.metrics.asr);
          ra.push_back(trial.metrics.ra);
        }
        table.add_row({attack, std::to_string(spc), variant.label,
                       mean_std_string(acc), mean_std_string(asr),
                       mean_std_string(ra)});
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
