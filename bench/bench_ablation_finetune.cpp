// Ablation C: contribution of the Sec. IV-C fine-tuning stage, and of the
// backdoor data within it.
//
// Variants on the same pruned models:
//   no-ft          : pruning only
//   ft-clean       : fine-tune on clean data only (classic recovery)
//   ft-clean+bd    : the paper's stage - clean + relabelled backdoor data
// The paper's claim: fine-tuning with relabelled backdoor data both
// recovers ACC lost to pruning and removes backdoor remnants in unpruned
// (dense) layers, lifting RA.
#include <cstdio>

#include "core/grad_prune.h"
#include "defense/defense.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/trainer.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

/// GradPrune with the fine-tune stage replaced by a configurable variant.
class FinetuneVariantDefense : public bd::defense::Defense {
 public:
  enum class Mode { kNone, kCleanOnly, kCleanPlusBackdoor };

  FinetuneVariantDefense(bd::core::GradPruneConfig config, Mode mode)
      : config_(config), mode_(mode) {}

  bd::defense::DefenseResult apply(
      bd::models::Classifier& model,
      const bd::defense::DefenseContext& ctx) override {
    config_.finetune = false;  // prune stage only
    bd::core::GradPruneDefense pruner(config_);
    auto result = pruner.apply(model, ctx);

    if (mode_ != Mode::kNone) {
      auto convs = model.modules_of_type<bd::nn::Conv2d>();
      bd::eval::EarlyStopConfig ft;
      ft.max_epochs = config_.finetune_max_epochs;
      ft.patience = config_.finetune_patience;
      ft.post_step = [&convs] {
        for (auto* conv : convs) conv->enforce_filter_masks();
      };
      const auto train =
          mode_ == Mode::kCleanOnly
              ? ctx.clean_train
              : bd::eval::concat(ctx.clean_train, ctx.backdoor_train);
      const auto val = mode_ == Mode::kCleanOnly
                           ? ctx.clean_val
                           : bd::eval::concat(ctx.clean_val, ctx.backdoor_val);
      const auto ft_result = bd::eval::finetune_early_stopping(
          model, train, val, ft, ctx.rng_ref());
      result.finetune_epochs = ft_result.epochs_run;
      for (auto* conv : convs) conv->enforce_filter_masks();
    }
    return result;
  }

  std::string name() const override { return "gradprune-ft-ablation"; }

 private:
  bd::core::GradPruneConfig config_;
  Mode mode_;
};

}  // namespace

int main() {
  using namespace bd;
  const eval::ExperimentScale scale = eval::default_scale("cifar");
  const std::uint64_t seed = base_seed();

  std::printf("== Ablation C: fine-tuning stage variants ==\n");
  std::printf("mode=%s trials=%d\n\n", full_mode() ? "full" : "quick",
              scale.trials);

  struct Variant {
    const char* label;
    FinetuneVariantDefense::Mode mode;
  };
  const Variant variants[] = {
      {"no-ft", FinetuneVariantDefense::Mode::kNone},
      {"ft-clean", FinetuneVariantDefense::Mode::kCleanOnly},
      {"ft-clean+bd (ours)", FinetuneVariantDefense::Mode::kCleanPlusBackdoor},
  };

  TextTable table({"Attack", "SPC", "Variant", "ACC", "ASR", "RA"});
  for (const char* attack : {"badnet", "lf"}) {
    Rng seeder(seed ^ std::hash<std::string>{}(attack));
    const auto bd_model = eval::prepare_backdoored_model(
        "cifar", "preactresnet", attack, scale, seeder.next_u64());

    for (const auto spc : scale.spc_settings) {
      for (const auto& variant : variants) {
        std::vector<double> acc, asr, ra;
        Rng trial_seeder(seeder.next_u64());
        for (int t = 0; t < scale.trials; ++t) {
          core::GradPruneConfig cfg;
          cfg.max_prune_rounds = scale.prune_max_rounds;
          cfg.finetune_max_epochs = scale.defense_max_epochs;
          FinetuneVariantDefense defense(cfg, variant.mode);
          const auto trial = eval::run_custom_defense_trial(
              bd_model, defense, spc, trial_seeder.next_u64());
          acc.push_back(trial.metrics.acc);
          asr.push_back(trial.metrics.asr);
          ra.push_back(trial.metrics.ra);
        }
        table.add_row({attack, std::to_string(spc), variant.label,
                       mean_std_string(acc), mean_std_string(asr),
                       mean_std_string(ra)});
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
