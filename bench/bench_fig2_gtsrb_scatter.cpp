// Figure 2 reproduction: GTSRB stand-in, scatter of ACC and RA versus ASR
// for the three strongest defenses (FT-SAM, ANP, Ours) across the
// PreActResNet, VGG, EfficientNet and MobileNetV3 architectures.
//
// Quick mode keeps all four architectures but trims attacks to the patch
// and blend families and runs one trial per setting; BDPROTO_MODE=full
// runs the paper's full grid.
#include <cstdlib>

#include "eval/table_bench.h"
#include "util/env.h"

int main() {
  if (!bd::env_int("BDPROTO_TRIALS") && !bd::full_mode()) {
    setenv("BDPROTO_TRIALS", "1", 0);
  }

  const std::vector<std::string> attacks =
      bd::full_mode() ? std::vector<std::string>{"badnet", "blended", "bpp", "lf"}
                      : std::vector<std::string>{"badnet", "blended"};

  for (const char* arch :
       {"preactresnet", "vgg", "efficientnet", "mobilenet"}) {
    bd::eval::TableSpec spec;
    spec.title = std::string("Figure 2 scatter: synthetic GTSRB, ") + arch;
    spec.dataset = "gtsrb";
    spec.arch = arch;
    spec.attacks = attacks;
    spec.defenses = {"ftsam", "anp", "gradprune"};
    spec.scatter = true;
    bd::eval::run_table(spec);
  }
  return 0;
}
