// Figure 1 reproduction: scatter of ACC and RA versus ASR on the CIFAR-10
// stand-in for ALL defenses, across both architectures, every attack and
// SPC setting. Emits one per-trial scatter point per line
// (defense, attack, spc, trial, asr, acc, ra); the tables above each
// scatter block are the aggregate view.
//
// Quick mode runs one trial per setting (the scatter needs points, not
// tight error bars); BDPROTO_MODE=full matches the paper protocol.
#include <cstdlib>

#include "eval/table_bench.h"
#include "util/env.h"

int main() {
  // One trial per point is enough for the scatter unless overridden.
  if (!bd::env_int("BDPROTO_TRIALS") && !bd::full_mode()) {
    setenv("BDPROTO_TRIALS", "1", 0);
  }

  for (const char* arch : {"preactresnet", "vgg"}) {
    bd::eval::TableSpec spec;
    spec.title = std::string("Figure 1 scatter: synthetic CIFAR-10, ") + arch;
    spec.dataset = "cifar";
    spec.arch = arch;
    spec.attacks = {"badnet", "blended", "bpp", "lf"};
    spec.defenses = {"ft", "fp", "nad", "clp", "ftsam", "anp", "gradprune"};
    spec.scatter = true;
    bd::eval::run_table(spec);
  }
  return 0;
}
