// Table I reproduction: CIFAR-10 stand-in + PreActResNet.
// All defenses x {BadNets, Blended, BPP, LF} x SPC settings, mean±std of
// ACC / ASR / RA over independent trials.
//
// BDPROTO_MODE=full widens the sweep to the paper's SPC={2,10,100} and 5
// trials; the quick default keeps the suite runnable on one core.
#include "eval/table_bench.h"

int main() {
  bd::eval::TableSpec spec;
  spec.title = "Table I: synthetic CIFAR-10, PreActResNet";
  spec.dataset = "cifar";
  spec.arch = "preactresnet";
  spec.attacks = {"badnet", "blended", "bpp", "lf"};
  spec.defenses = {"ft", "fp", "nad", "clp", "ftsam", "anp", "gradprune"};
  bd::eval::run_table(spec);
  return 0;
}
