// Extension experiment: sample-specific (dynamic) trigger.
//
// The paper's threat model (Sec. III-B) explicitly allows the trigger
// pattern to vary with the input, but its evaluation uses static triggers
// only. This bench backdoors models with a content-dependent patch trigger
// (location + polarity decided by a perceptual hash of each image) and
// runs the three strongest defenses against it.
#include <cstdio>

#include "eval/table_bench.h"

int main() {
  bd::eval::TableSpec spec;
  spec.title = "Extension: sample-specific (dynamic) trigger";
  spec.dataset = "cifar";
  spec.arch = "preactresnet";
  spec.attacks = {"dynamic"};
  spec.defenses = {"ftsam", "anp", "gradprune"};
  bd::eval::run_table(spec);
  return 0;
}
