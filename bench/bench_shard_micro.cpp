// Micro-scale table bench for exercising the sharded-execution path
// (src/shard/) end to end in seconds rather than minutes: one attack,
// three defenses, two SPC settings, one trial. The scale is pinned inline
// (BDPROTO_MODE is ignored) so the merged output is byte-identical across
// machines, worker counts, and crash/steal schedules — CI diffs it.
#include "eval/table_bench.h"

int main() {
  bd::eval::ExperimentScale scale;
  scale.data.height = scale.data.width = 8;
  scale.data.train_per_class = 8;
  scale.data.test_per_class = 2;
  scale.attack_train.epochs = 1;
  scale.base_width = 8;
  scale.spc_settings = {2, 5};
  scale.trials = 1;
  scale.defense_max_epochs = 2;
  scale.prune_max_rounds = 3;
  scale.anp_iterations = 2;
  scale.nad_teacher_epochs = 1;
  scale.nad_distill_epochs = 1;

  bd::eval::TableSpec spec;
  spec.title = "Shard micro-table: synthetic CIFAR-10, PreActResNet";
  spec.dataset = "cifar";
  spec.arch = "preactresnet";
  spec.attacks = {"badnet"};
  spec.defenses = {"ft", "clp", "gradprune"};
  spec.scale = scale;
  bd::eval::run_table(spec);
  return 0;
}
