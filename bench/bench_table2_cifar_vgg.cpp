// Table II reproduction: CIFAR-10 stand-in + VGG+BN.
// Same protocol as Table I on the plain-conv architecture.
#include "eval/table_bench.h"

int main() {
  bd::eval::TableSpec spec;
  spec.title = "Table II: synthetic CIFAR-10, VGG+BN";
  spec.dataset = "cifar";
  spec.arch = "vgg";
  spec.attacks = {"badnet", "blended", "bpp", "lf"};
  spec.defenses = {"ft", "fp", "nad", "clp", "ftsam", "anp", "gradprune"};
  bd::eval::run_table(spec);
  return 0;
}
