// Ablation B: sensitivity to the stopping-rule parameters.
//
// The paper advertises "few intuitive hyperparameters": the accuracy
// threshold alpha and the pruning patience P_p. This bench sweeps both on
// a BadNets-backdoored PreActResNet and reports ACC/ASR/RA plus how many
// filters each setting pruned - demonstrating the claimed insensitivity.
#include <cstdio>

#include "core/grad_prune.h"
#include "eval/runner.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace bd;
  const eval::ExperimentScale scale = eval::default_scale("cifar");
  const std::uint64_t seed = base_seed();

  std::printf("== Ablation B: stopping-rule sensitivity (alpha, P_p) ==\n");
  std::printf("mode=%s trials=%d\n\n", full_mode() ? "full" : "quick",
              scale.trials);

  Rng seeder(seed ^ 0xB10C5EEDULL);
  const auto bd_model = eval::prepare_backdoored_model(
      "cifar", "preactresnet", "badnet", scale, seeder.next_u64());

  const std::int64_t spc = scale.spc_settings.back();
  TextTable table({"alpha", "P_p", "ACC", "ASR", "RA", "pruned"});

  for (const double alpha : {0.05, 0.10, 0.20}) {
    for (const std::int64_t pp : {5LL, 10LL, 20LL}) {
      std::vector<double> acc, asr, ra, pruned;
      Rng trial_seeder(seeder.next_u64());
      for (int t = 0; t < scale.trials; ++t) {
        core::GradPruneConfig cfg;
        cfg.alpha = alpha;
        cfg.prune_patience = pp;
        cfg.max_prune_rounds = scale.prune_max_rounds;
        cfg.finetune_max_epochs = scale.defense_max_epochs;
        core::GradPruneDefense defense(cfg);
        const auto trial = eval::run_custom_defense_trial(
            bd_model, defense, spc, trial_seeder.next_u64());
        acc.push_back(trial.metrics.acc);
        asr.push_back(trial.metrics.asr);
        ra.push_back(trial.metrics.ra);
        pruned.push_back(static_cast<double>(trial.info.pruned_units));
      }
      char alpha_buf[16];
      std::snprintf(alpha_buf, sizeof(alpha_buf), "%.2f", alpha);
      table.add_row({alpha_buf, std::to_string(pp), mean_std_string(acc),
                     mean_std_string(asr), mean_std_string(ra),
                     mean_std_string(pruned, 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
