// Saturation bench for the serve subsystem: sustained jobs/min of a
// SanitizeService worker pool at 1, 2 and 4 workers, driven in-process so
// no socket or client latency muddies the number.
//
// The tensor runtime is pinned to ONE thread, so the measured scaling
// comes from worker-level parallelism (concurrent jobs), not from the
// kernels — the honest number for capacity planning, since a deployment
// sizes its worker pool against single-threaded job cost. The backbone
// cache is disabled so every job carries the full pipeline (train poisoned
// backbone + sanitize + evaluate); cache-hit latency is a separate,
// near-free path that would only flatter the result.
//
// A second table measures the same workload end to end through each
// transport (AF_UNIX vs TCP loopback): daemon in a thread, jobs submitted
// and awaited through the retrying client. The delta against the
// in-process number is the protocol + socket overhead; the delta between
// the two transports is what moving off-box costs (minus real network
// latency, which loopback cannot show).
//
// Besides the console table, a machine-readable summary goes to
// BENCH_serve.json (override with BDPROTO_BENCH_JSON) so CI can archive
// service throughput across commits.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "robust/supervisor.h"
#include "util/atomic_file.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/service.h"

namespace {

constexpr std::int64_t kJobs = 9;
constexpr int kTenants = 3;

bd::serve::JobSpec tiny_spec(std::int64_t index) {
  bd::serve::JobSpec spec;
  spec.tenant = "tenant" + std::to_string(index % kTenants);
  spec.spc = 2;
  spec.seed = 1234 + static_cast<std::uint64_t>(index);  // distinct backbones
  spec.width = 4;
  spec.attack_epochs = 1;
  spec.prune_rounds = 2;
  spec.finetune_epochs = 1;
  spec.train_per_class = 4;
  spec.test_per_class = 4;
  return spec;
}

struct RunResult {
  std::size_t workers = 0;
  double seconds = 0.0;
  double jobs_per_min = 0.0;
  std::int64_t done = 0;
  std::int64_t failed = 0;
};

RunResult run_at(std::size_t workers) {
  bd::robust::Supervisor supervisor;  // fresh strikes/stats per pool size
  bd::serve::ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = static_cast<std::size_t>(kJobs);
  config.tenant_quota = static_cast<std::size_t>(kJobs);
  config.cache_capacity = 0;  // full pipeline on every job
  config.supervisor = &supervisor;

  bd::serve::SanitizeService service(config);
  for (std::int64_t i = 0; i < kJobs; ++i) {
    const bd::serve::SubmitResult submitted = service.submit(tiny_spec(i));
    if (submitted.admission != bd::serve::Admission::kAdmitted) {
      std::fprintf(stderr, "bench_serve: submit rejected: %s\n",
                   bd::serve::admission_name(submitted.admission));
      std::exit(1);
    }
  }

  // Workers start after the queue is loaded: the measurement is pure
  // drain, no submit latency inside the window.
  const auto t0 = std::chrono::steady_clock::now();
  service.start();
  service.drain();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  service.stop();

  const bd::serve::ServiceStats stats = service.stats();
  RunResult result;
  result.workers = workers;
  result.seconds = elapsed.count();
  result.jobs_per_min = elapsed.count() > 0
                            ? 60.0 * static_cast<double>(kJobs) /
                                  elapsed.count()
                            : 0.0;
  result.done = stats.done;
  result.failed = stats.failed;
  return result;
}

struct TransportResult;
bool write_json(const std::string& path, const std::vector<RunResult>& results,
                const std::vector<TransportResult>& transports);

struct TransportResult {
  std::string transport;
  double seconds = 0.0;
  double jobs_per_min = 0.0;
  std::int64_t done = 0;
};

std::string tiny_job_json(std::int64_t index) {
  bd::serve::JsonObject job;
  job.set_int("spc", 2)
      .set_int("seed", 1234 + index)
      .set_int("width", 4)
      .set_int("attack_epochs", 1)
      .set_int("prune_rounds", 2)
      .set_int("finetune_epochs", 1)
      .set_int("train_per_class", 4)
      .set_int("test_per_class", 4);
  return job.str();
}

/// End-to-end jobs/min through one transport: daemon thread + retrying
/// client, 2 workers, same tiny jobs as the in-process table.
TransportResult run_transport(bool tcp) {
  bd::robust::Supervisor supervisor;
  bd::serve::ServerConfig config;
  config.service.workers = 2;
  config.service.queue_capacity = static_cast<std::size_t>(kJobs);
  config.service.tenant_quota = static_cast<std::size_t>(kJobs);
  config.service.cache_capacity = 0;
  config.service.supervisor = &supervisor;
  const std::string socket_path = "bench_serve_transport.sock";
  if (tcp) {
    config.socket_path.clear();
    config.listen_address = "127.0.0.1:0";  // ephemeral port
  } else {
    config.socket_path = socket_path;
  }

  bd::serve::SocketServer server(config);
  std::thread daemon([&server] { server.run(); });
  // Wait for the listener: TCP publishes its bound port, Unix its socket.
  for (int i = 0; i < 200; ++i) {
    if (tcp ? server.tcp_port() != 0
            : bd::serve::Client(socket_path).alive()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const bd::serve::Endpoint endpoint =
      tcp ? bd::serve::tcp_endpoint("127.0.0.1:" +
                                    std::to_string(server.tcp_port()))
          : bd::serve::unix_endpoint(socket_path);
  const bd::serve::Client client(endpoint);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::string> ids;
  for (std::int64_t i = 0; i < kJobs; ++i) {
    bd::serve::JsonObject request;
    request.set("op", "submit")
        .set("tenant", "tenant" + std::to_string(i % kTenants))
        .set_raw("job", tiny_job_json(i));
    const bd::serve::Json response =
        client.request_json_retry(request.str());
    if (!response.get_bool("ok", false)) {
      std::fprintf(stderr, "bench_serve: submit failed: %s\n",
                   response.get_string("message").c_str());
      std::exit(1);
    }
    ids.push_back(response.get_string("id"));
  }
  std::int64_t done = 0;
  for (const std::string& id : ids) {
    for (;;) {
      const bd::serve::Json response = client.request_json_retry(
          bd::serve::JsonObject().set("op", "wait").set("id", id).str());
      if (response.get_bool("ok", false)) {
        const bd::serve::Json* job = response.find("job");
        if (job != nullptr && job->get_string("state") == "done") ++done;
        break;
      }
      if (response.get_string("error") != "wait_timeout") break;
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;

  client.request_json_retry("{\"op\":\"shutdown\"}");
  daemon.join();

  TransportResult result;
  result.transport = tcp ? "tcp" : "unix";
  result.seconds = elapsed.count();
  result.jobs_per_min =
      elapsed.count() > 0
          ? 60.0 * static_cast<double>(kJobs) / elapsed.count()
          : 0.0;
  result.done = done;
  return result;
}

bool write_json(const std::string& path, const std::vector<RunResult>& results,
                const std::vector<TransportResult>& transports) {
  std::ostringstream os;
  os << "{\"bench\":\"serve\",\"jobs\":" << kJobs
     << ",\"tenants\":" << kTenants << ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s\n{\"workers\":%zu,\"seconds\":%.3f,"
                  "\"jobs_per_min\":%.2f,\"done\":%lld,\"failed\":%lld}",
                  i ? "," : "", r.workers, r.seconds, r.jobs_per_min,
                  static_cast<long long>(r.done),
                  static_cast<long long>(r.failed));
    os << line;
  }
  os << "\n],\"transports\":[";
  for (std::size_t i = 0; i < transports.size(); ++i) {
    const TransportResult& t = transports[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s\n{\"transport\":\"%s\",\"seconds\":%.3f,"
                  "\"jobs_per_min\":%.2f,\"done\":%lld}",
                  i ? "," : "", t.transport.c_str(), t.seconds,
                  t.jobs_per_min, static_cast<long long>(t.done));
    os << line;
  }
  os << "\n]}\n";
  return bd::write_file_atomic(path, os.str());
}

}  // namespace

int main() {
  // Keep the job size bench-friendly unless the caller asked otherwise.
  ::setenv("BDPROTO_MODE", "quick", /*overwrite=*/0);
  // One tensor thread: scaling below is worker-level, not kernel-level.
  bd::runtime::set_thread_count(1);

  std::vector<RunResult> results;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const RunResult r = run_at(workers);
    std::printf("workers=%zu  %6.2fs  %8.1f jobs/min  done=%lld failed=%lld",
                r.workers, r.seconds, r.jobs_per_min,
                static_cast<long long>(r.done),
                static_cast<long long>(r.failed));
    if (!results.empty() && r.seconds > 0) {
      std::printf("  speedup=%.2fx", results.front().seconds / r.seconds);
    }
    std::printf("\n");
    results.push_back(r);
  }

  std::vector<TransportResult> transports;
  for (const bool tcp : {false, true}) {
    const TransportResult t = run_transport(tcp);
    std::printf("transport=%-5s  %6.2fs  %8.1f jobs/min  done=%lld\n",
                t.transport.c_str(), t.seconds, t.jobs_per_min,
                static_cast<long long>(t.done));
    transports.push_back(t);
  }

  const char* env_path = std::getenv("BDPROTO_BENCH_JSON");
  const std::string path = env_path != nullptr && env_path[0] != '\0'
                               ? env_path
                               : "BENCH_serve.json";
  if (!write_json(path, results, transports)) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
