// Kernel microbenchmarks (google-benchmark): matmul, conv forward/backward,
// batchnorm and a full small-model training step. These establish the
// engine throughput underlying every experiment in the paper reproduction.
//
// Besides the console table, every run writes a machine-readable summary to
// BENCH_kernels.json (override the path with BDPROTO_BENCH_JSON) so CI can
// archive kernel throughput across commits.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "autograd/arena.h"
#include "autograd/ops.h"
#include "models/factory.h"
#include "nn/layers.h"
#include "obs/obs.h"
#include "util/atomic_file.h"
#include "runtime/thread_pool.h"
#include "tensor/conv.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace {

bd::Tensor random_tensor(const bd::Shape& shape, bd::Rng& rng) {
  bd::Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  bd::Rng rng(1);
  const bd::Tensor a = random_tensor({n, n}, rng);
  const bd::Tensor b = random_tensor({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bd::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

// Thread-scaling variants: Arg is the bd::runtime pool size, forced via the
// set_thread_count() hook. Wall-clock (real time) is the honest metric for
// multi-worker kernels; the determinism contract means the outputs are
// bitwise identical across all three settings.
void BM_MatmulParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  bd::runtime::set_thread_count(threads);
  bd::Rng rng(7);
  const bd::Tensor a = random_tensor({128, 128}, rng);
  const bd::Tensor b = random_tensor({128, 128}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bd::matmul(a, b));
  }
  bd::runtime::set_thread_count(0);
  state.SetItemsProcessed(state.iterations() * 128 * 128 * 128);
}
BENCHMARK(BM_MatmulParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Conv2dForwardParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  bd::runtime::set_thread_count(threads);
  bd::Rng rng(8);
  const bd::Tensor x = random_tensor({8, 16, 16, 16}, rng);
  const bd::Tensor w = random_tensor({16, 16, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bd::conv2d_forward(x, w, bd::Tensor(), {1, 1}));
  }
  bd::runtime::set_thread_count(0);
}
BENCHMARK(BM_Conv2dForwardParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Conv2dForward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  bd::Rng rng(2);
  const bd::Tensor x = random_tensor({8, c, 16, 16}, rng);
  const bd::Tensor w = random_tensor({c, c, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bd::conv2d_forward(x, w, bd::Tensor(), {1, 1}));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dBackward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  bd::Rng rng(3);
  const bd::Tensor x = random_tensor({8, c, 16, 16}, rng);
  const bd::Tensor w = random_tensor({c, c, 3, 3}, rng);
  const bd::Tensor go = random_tensor({8, c, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bd::conv2d_backward(x, w, false, go, {1, 1}));
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16);

void BM_DepthwiseConv(benchmark::State& state) {
  bd::Rng rng(4);
  const bd::Tensor x = random_tensor({8, 32, 16, 16}, rng);
  const bd::Tensor w = random_tensor({32, 1, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bd::depthwise_conv2d_forward(x, w, bd::Tensor(), {1, 1}));
  }
}
BENCHMARK(BM_DepthwiseConv);

void BM_ModelForward(benchmark::State& state) {
  bd::Rng rng(5);
  bd::models::ModelSpec spec;
  spec.arch = "preactresnet";
  spec.base_width = 8;
  auto model = bd::models::make_model(spec, rng);
  model->set_training(false);
  const bd::Tensor x = random_tensor({16, 3, 16, 16}, rng);
  bd::ag::NoGradGuard guard;
  for (auto _ : state) {
    // forward() only builds the graph; value() forces materialization.
    benchmark::DoNotOptimize(model->forward(bd::ag::Var(x)).value()[0]);
  }
}
BENCHMARK(BM_ModelForward);

void BM_ModelTrainStep(benchmark::State& state) {
  bd::Rng rng(6);
  bd::models::ModelSpec spec;
  spec.arch = "preactresnet";
  spec.base_width = 8;
  auto model = bd::models::make_model(spec, rng);
  model->set_training(true);
  const bd::Tensor x = random_tensor({16, 3, 16, 16}, rng);
  const std::vector<std::int64_t> labels(16, 1);
  for (auto _ : state) {
    model->zero_grad();
    auto loss = bd::ag::cross_entropy(model->forward(bd::ag::Var(x)), labels);
    loss.backward();
    benchmark::DoNotOptimize(loss.value()[0]);
  }
}
BENCHMARK(BM_ModelTrainStep);

// Same training step, but reporting the backward-pass memory planner: the
// graph IR plans one buffer per interior gradient and serves it from the
// thread-local arena, so in steady state the reuse ratio approaches 1 and
// the arena footprint (peak_bytes) sits far below what a malloc-per-node
// backward would touch (naive = buffers_planned fresh buffers per pass).
// Counters are exported so BENCH_kernels.json records the reduction.
void BM_TrainStepArena(benchmark::State& state) {
  bd::Rng rng(6);
  bd::models::ModelSpec spec;
  spec.arch = "preactresnet";
  spec.base_width = 8;
  auto model = bd::models::make_model(spec, rng);
  model->set_training(true);
  const bd::Tensor x = random_tensor({16, 3, 16, 16}, rng);
  const std::vector<std::int64_t> labels(16, 1);

  auto& arena = bd::ag::GradArena::local();
  arena.reset_stats();
  for (auto _ : state) {
    model->zero_grad();
    auto loss = bd::ag::cross_entropy(model->forward(bd::ag::Var(x)), labels);
    loss.backward();
    benchmark::DoNotOptimize(loss.value()[0]);
  }
  const bd::ag::ArenaStats& s = arena.stats();
  const double passes = static_cast<double>(s.passes > 0 ? s.passes : 1);
  state.counters["arena_peak_bytes"] =
      static_cast<double>(s.last_peak_bytes);
  state.counters["arena_naive_bytes"] =
      static_cast<double>(s.last_naive_bytes);
  state.counters["arena_reuse_ratio"] =
      s.buffers_planned > 0 ? static_cast<double>(s.buffers_reused) /
                                  static_cast<double>(s.buffers_planned)
                            : 0.0;
  state.counters["grad_buffers_per_pass"] =
      static_cast<double>(s.buffers_planned) / passes;
  state.counters["slot_allocs_total"] = static_cast<double>(s.slot_allocs);
}
BENCHMARK(BM_TrainStepArena);

// Observability off-path overhead: both pillars disabled, so each iteration
// pays exactly one relaxed atomic load in the Span constructor (and nothing
// in the destructor). Tracks the "costs nothing when off" guarantee that
// tests/obs_test.cpp asserts with a wall-clock bound.
void BM_SpanOverhead(benchmark::State& state) {
  bd::obs::set_metrics_enabled(false);
  bd::obs::set_trace_enabled(false);
  for (auto _ : state) {
    bd::obs::Span span("bench.span_overhead");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanOverhead);

// Same guarantee for the combined kernel probe (span + counters + duration
// histogram): disabled, it is one atomic load after the first call.
void BM_KernelProbeOverhead(benchmark::State& state) {
  bd::obs::set_metrics_enabled(false);
  bd::obs::set_trace_enabled(false);
  for (auto _ : state) {
    BD_OBS_KERNEL("bench.kernel_probe_overhead", 1);
    benchmark::DoNotOptimize(&state);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelProbeOverhead);

/// Collects per-benchmark results for the JSON export. `op` is the function
/// name, `shape` the slash-separated argument suffix (the pool size for the
/// */Parallel variants), `threads` the runtime pool width in effect.
class JsonCollector : public benchmark::BenchmarkReporter {
 public:
  struct Row {
    std::string name;
    double ns_per_op;
    std::int64_t iterations;
    std::vector<std::pair<std::string, double>> counters;
  };

  bool ReportContext(const Context& context) override {
    return console_.ReportContext(context);
  }

  void Finalize() override { console_.Finalize(); }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_.ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.run_type == Run::RT_Aggregate || run.error_occurred) continue;
      const double ns =
          run.iterations > 0
              ? run.real_accumulated_time * 1e9 /
                    static_cast<double>(run.iterations)
              : 0.0;
      // run.counters is a std::map, so this ordering is deterministic.
      std::vector<std::pair<std::string, double>> counters;
      for (const auto& [cname, counter] : run.counters) {
        counters.emplace_back(cname, static_cast<double>(counter.value));
      }
      rows_.push_back({run.benchmark_name(), ns, run.iterations,
                       std::move(counters)});
    }
  }

  bool write_json(const std::string& path) const {
    std::ostringstream os;
    os << "{\"benchmarks\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      const std::size_t slash = r.name.find('/');
      const std::string op = r.name.substr(0, slash);
      const std::string shape =
          slash == std::string::npos ? "" : r.name.substr(slash + 1);
      char num[64];
      std::snprintf(num, sizeof(num), "%.3f", r.ns_per_op);
      os << (i ? ",\n" : "\n") << "{\"name\":\"" << r.name << "\",\"op\":\""
         << op << "\",\"shape\":\"" << shape
         << "\",\"threads\":" << bd::runtime::thread_count()
         << ",\"iterations\":" << r.iterations << ",\"ns_per_op\":" << num;
      for (const auto& [cname, value] : r.counters) {
        std::snprintf(num, sizeof(num), "%.3f", value);
        os << ",\"" << cname << "\":" << num;
      }
      os << '}';
    }
    os << "\n]}\n";
    return bd::write_file_atomic(path, os.str());
  }

  bool empty() const { return rows_.empty(); }

 private:
  // Delegate display to the standard console table; this reporter is passed
  // as the display reporter because the library insists on --benchmark_out
  // whenever a separate file reporter is supplied.
  benchmark::ConsoleReporter console_;
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  JsonCollector collector;
  benchmark::RunSpecifiedBenchmarks(&collector);

  const char* env_path = std::getenv("BDPROTO_BENCH_JSON");
  const std::string json_path =
      (env_path != nullptr && env_path[0] != '\0') ? env_path
                                                   : "BENCH_kernels.json";
  if (!collector.empty()) {
    if (collector.write_json(json_path)) {
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  benchmark::Shutdown();
  return 0;
}
