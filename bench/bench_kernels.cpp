// Kernel microbenchmarks (google-benchmark): matmul, conv forward/backward,
// batchnorm and a full small-model training step. These establish the
// engine throughput underlying every experiment in the paper reproduction.
#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "models/factory.h"
#include "nn/layers.h"
#include "runtime/thread_pool.h"
#include "tensor/conv.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace {

bd::Tensor random_tensor(const bd::Shape& shape, bd::Rng& rng) {
  bd::Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  bd::Rng rng(1);
  const bd::Tensor a = random_tensor({n, n}, rng);
  const bd::Tensor b = random_tensor({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bd::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

// Thread-scaling variants: Arg is the bd::runtime pool size, forced via the
// set_thread_count() hook. Wall-clock (real time) is the honest metric for
// multi-worker kernels; the determinism contract means the outputs are
// bitwise identical across all three settings.
void BM_MatmulParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  bd::runtime::set_thread_count(threads);
  bd::Rng rng(7);
  const bd::Tensor a = random_tensor({128, 128}, rng);
  const bd::Tensor b = random_tensor({128, 128}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bd::matmul(a, b));
  }
  bd::runtime::set_thread_count(0);
  state.SetItemsProcessed(state.iterations() * 128 * 128 * 128);
}
BENCHMARK(BM_MatmulParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Conv2dForwardParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  bd::runtime::set_thread_count(threads);
  bd::Rng rng(8);
  const bd::Tensor x = random_tensor({8, 16, 16, 16}, rng);
  const bd::Tensor w = random_tensor({16, 16, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bd::conv2d_forward(x, w, bd::Tensor(), {1, 1}));
  }
  bd::runtime::set_thread_count(0);
}
BENCHMARK(BM_Conv2dForwardParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Conv2dForward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  bd::Rng rng(2);
  const bd::Tensor x = random_tensor({8, c, 16, 16}, rng);
  const bd::Tensor w = random_tensor({c, c, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bd::conv2d_forward(x, w, bd::Tensor(), {1, 1}));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dBackward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  bd::Rng rng(3);
  const bd::Tensor x = random_tensor({8, c, 16, 16}, rng);
  const bd::Tensor w = random_tensor({c, c, 3, 3}, rng);
  const bd::Tensor go = random_tensor({8, c, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bd::conv2d_backward(x, w, false, go, {1, 1}));
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16);

void BM_DepthwiseConv(benchmark::State& state) {
  bd::Rng rng(4);
  const bd::Tensor x = random_tensor({8, 32, 16, 16}, rng);
  const bd::Tensor w = random_tensor({32, 1, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bd::depthwise_conv2d_forward(x, w, bd::Tensor(), {1, 1}));
  }
}
BENCHMARK(BM_DepthwiseConv);

void BM_ModelForward(benchmark::State& state) {
  bd::Rng rng(5);
  bd::models::ModelSpec spec;
  spec.arch = "preactresnet";
  spec.base_width = 8;
  auto model = bd::models::make_model(spec, rng);
  model->set_training(false);
  const bd::Tensor x = random_tensor({16, 3, 16, 16}, rng);
  bd::ag::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(bd::ag::Var(x)));
  }
}
BENCHMARK(BM_ModelForward);

void BM_ModelTrainStep(benchmark::State& state) {
  bd::Rng rng(6);
  bd::models::ModelSpec spec;
  spec.arch = "preactresnet";
  spec.base_width = 8;
  auto model = bd::models::make_model(spec, rng);
  model->set_training(true);
  const bd::Tensor x = random_tensor({16, 3, 16, 16}, rng);
  const std::vector<std::int64_t> labels(16, 1);
  for (auto _ : state) {
    model->zero_grad();
    auto loss = bd::ag::cross_entropy(model->forward(bd::ag::Var(x)), labels);
    loss.backward();
    benchmark::DoNotOptimize(loss.value()[0]);
  }
}
BENCHMARK(BM_ModelTrainStep);

}  // namespace

BENCHMARK_MAIN();
