// Extension experiment (the paper's stated future work): does the defense
// survive replacing the oracle trigger-synthesis assumption (Sec. III-C)
// with Neural-Cleanse-style trigger INVERSION?
//
// For each attack: defend the same backdoored model twice -
//   oracle   : defender synthesizes with the attacker's true trigger
//   inverted : defender recovers (mask, pattern) by inversion toward the
//              known target class and synthesizes with that
// and compare ACC/ASR/RA. The gap quantifies how much of the defense's
// power depends on trigger fidelity.
#include <cstdio>

#include "core/grad_prune.h"
#include "defense/inversion.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace bd;
  const eval::ExperimentScale scale = eval::default_scale("cifar");
  const std::uint64_t seed = base_seed();
  const std::int64_t spc = scale.spc_settings.back();

  std::printf("== Extension: oracle vs inverted trigger synthesis ==\n");
  std::printf("mode=%s trials=%d spc=%lld\n\n", full_mode() ? "full" : "quick",
              scale.trials, static_cast<long long>(spc));

  TextTable table({"Attack", "Synthesis", "ACC", "ASR", "RA"});
  for (const char* attack : {"badnet", "blended"}) {
    Rng seeder(seed ^ std::hash<std::string>{}(attack));
    const auto bd_model = eval::prepare_backdoored_model(
        "cifar", "preactresnet", attack, scale, seeder.next_u64());

    char buf[3][32];
    std::snprintf(buf[0], 32, "%.2f", bd_model.baseline.acc);
    std::snprintf(buf[1], 32, "%.2f", bd_model.baseline.asr);
    std::snprintf(buf[2], 32, "%.2f", bd_model.baseline.ra);
    table.add_row({attack, "baseline", buf[0], buf[1], buf[2]});

    // Oracle synthesis: the standard pipeline.
    const auto oracle =
        eval::run_setting(bd_model, "gradprune", spc, scale, seeder.next_u64());
    table.add_row({attack, "oracle", mean_std_string(oracle.acc),
                   mean_std_string(oracle.asr), mean_std_string(oracle.ra)});

    // Inverted synthesis: invert a trigger toward the (known) target class
    // per trial, then run the same defense with it.
    std::vector<double> acc, asr, ra;
    Rng trial_seeder(seeder.next_u64());
    for (int t = 0; t < scale.trials; ++t) {
      Rng rng(trial_seeder.next_u64());
      auto model = bd_model.instantiate(rng);
      const auto spc_set = bd_model.clean_train_pool.sample_per_class(spc, rng);

      defense::InversionConfig inv_cfg;
      inv_cfg.iterations = full_mode() ? 200 : 80;
      const auto trig =
          defense::invert_trigger(*model, spc_set, /*target_class=*/0,
                                  inv_cfg, rng);
      const defense::InvertedTriggerApplier applier(trig);
      const auto ctx =
          defense::make_defense_context(spc_set, applier, bd_model.spec, rng);

      core::GradPruneConfig cfg;
      cfg.max_prune_rounds = scale.prune_max_rounds;
      cfg.finetune_max_epochs = scale.defense_max_epochs;
      core::GradPruneDefense defense(cfg);
      defense.apply(*model, ctx);
      const auto m = eval::evaluate_backdoor(*model, bd_model.clean_test,
                                             bd_model.asr_test,
                                             bd_model.ra_test);
      acc.push_back(m.acc);
      asr.push_back(m.asr);
      ra.push_back(m.ra);
    }
    table.add_row({attack, "inverted", mean_std_string(acc),
                   mean_std_string(asr), mean_std_string(ra)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
